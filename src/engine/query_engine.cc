#include "engine/query_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <thread>

#include "exec/group_table.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"

namespace cjoin {

namespace {

/// Reads a ColumnSource value given a fact row and attached dim rows.
Value ReadSource(const StarSchema& star, const ColumnSource& src,
                 const uint8_t* fact_row, const uint8_t* const* dim_rows) {
  const Schema* schema;
  const uint8_t* row;
  if (src.from == ColumnSource::From::kFact) {
    schema = &star.fact().schema();
    row = fact_row;
  } else {
    schema = &star.dimension(src.dim_index).table->schema();
    row = dim_rows[src.dim_index];
  }
  if (row == nullptr) return Value();
  const Column& c = schema->column(src.column);
  switch (c.type) {
    case DataType::kInt32:
      return Value(static_cast<int64_t>(schema->GetInt32(row, src.column)));
    case DataType::kInt64:
      return Value(schema->GetInt64(row, src.column));
    case DataType::kDouble:
      return Value(schema->GetDouble(row, src.column));
    case DataType::kChar:
      return Value(schema->GetChar(row, src.column));
  }
  return Value();
}

/// Rows collected from one side of a galaxy join: the fact-to-fact join
/// key plus the projected output values.
struct CollectedSide {
  std::vector<int64_t> keys;
  std::vector<std::vector<Value>> values;
};

/// Aggregator that materializes joined tuples instead of aggregating. On a
/// sharded pool the operator wraps it in a serializing proxy, so exactly
/// one thread writes at a time even with one instance shared by N
/// Distributors.
class CollectorAggregator final : public StarAggregator {
 public:
  CollectorAggregator(const StarSchema& star, size_t join_col,
                      std::vector<ColumnSource> projection,
                      CollectedSide* out)
      : star_(star),
        join_col_(join_col),
        projection_(std::move(projection)),
        out_(out) {}

  void Consume(const uint8_t* fact_row,
               const uint8_t* const* dim_rows) override {
    ++consumed_;
    out_->keys.push_back(
        star_.fact().schema().GetIntAny(fact_row, join_col_));
    std::vector<Value> vals;
    vals.reserve(projection_.size());
    for (const ColumnSource& src : projection_) {
      vals.push_back(ReadSource(star_, src, fact_row, dim_rows));
    }
    out_->values.push_back(std::move(vals));
  }

  ResultSet Finish() override {
    ResultSet rs;
    rs.tuples_consumed = consumed_;
    return rs;
  }

  uint64_t tuples_consumed() const override { return consumed_; }

 private:
  const StarSchema& star_;
  size_t join_col_;
  std::vector<ColumnSource> projection_;
  CollectedSide* out_;
  uint64_t consumed_ = 0;
};

/// True iff two star schemas describe the same star: same fact table and
/// positionally identical dimensions (dim_index-based specs bound
/// against one are valid against the other).
bool SchemasEquivalent(const StarSchema& a, const StarSchema& b) {
  if (&a.fact() != &b.fact()) return false;
  if (a.num_dimensions() != b.num_dimensions()) return false;
  for (size_t d = 0; d < a.num_dimensions(); ++d) {
    const DimensionDef& da = a.dimension(d);
    const DimensionDef& db = b.dimension(d);
    if (da.table != db.table || da.fact_fk_col != db.fact_fk_col ||
        da.dim_pk_col != db.dim_pk_col) {
      return false;
    }
  }
  return true;
}

/// Spacing of disk reader identities between stars, leaving room for one
/// identity per shard within a star's pool.
constexpr uint64_t kReaderIdStride = 64;

/// Admission is keyed by tenant id; requests without one share the
/// "default" tenant.
std::string TenantOrDefault(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

/// "admitted (within quota)" / "shed (tenant CJOIN slots)" — the form
/// RouteDecision::ToString and the shell surface.
std::string FormatAdmission(const AdmissionDecision& ad) {
  std::string out = AdmissionOutcomeName(ad.outcome);
  if (!ad.reason.empty()) out += " (" + ad.reason + ")";
  return out;
}

/// Registry label value for a route.
const char* RouteLabel(RouteChoice route) {
  return route == RouteChoice::kCJoin ? "cjoin" : "baseline";
}

/// One completed query's report to the route calibrator and the metrics
/// registry, shared by the three completion paths (admitted CJOIN,
/// deferred-grant CJOIN, baseline). Every completion records the
/// engine-wide per-route and per-tenant latency histograms and the
/// outcome counter; only successful kAuto-routed queries carry
/// calibration evidence (work_units > 0). [submit_ns, queue_end_ns) is
/// attributed to queueing, [queue_end_ns, done_ns) to service.
void ObserveCompletion(RouteCalibrator* cal, QueryEngine* engine,
                       const std::shared_ptr<obs::QueryTrace>& trace,
                       RouteChoice route, const std::string& tenant,
                       double work_units, const Result<ResultSet>& result,
                       int64_t submit_ns, int64_t queue_end_ns,
                       int64_t done_ns) {
  if (trace != nullptr && obs::MetricsEnabled()) {
    // Retain the span trace for the flight recorder's Perfetto dump
    // (re-emitted as async "query" events) and, past the threshold, for
    // the slow-query log.
    obs::FlightRecorder::Global().NoteQueryTrace(trace);
    const int64_t threshold = engine->slow_query_threshold().count();
    if (threshold > 0 && done_ns - submit_ns >= threshold) {
      engine->slow_query_log().Record(done_ns - submit_ns, *trace);
    }
  }
  if (obs::MetricsEnabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("queries_total",
                   "Completed queries by route and terminal status",
                   obs::LabelPair("route", RouteLabel(route)) + "," +
                       obs::LabelPair("status",
                                      result.ok() ? "ok" : "error"))
        ->Add();
    if (done_ns > submit_ns) {
      const uint64_t latency = static_cast<uint64_t>(done_ns - submit_ns);
      reg.GetHistogram("query_latency_ns",
                       "End-to-end query latency (submit to result)",
                       obs::LabelPair("route", RouteLabel(route)))
          ->Record(latency);
      reg.GetHistogram("tenant_query_latency_ns",
                       "End-to-end query latency per tenant",
                       obs::LabelPair("tenant", tenant))
          ->Record(latency);
    }
  }
  if (work_units <= 0.0 || !result.ok()) return;
  RouteObservation obs;
  obs.route = route;
  obs.work_units = work_units;
  obs.wall_seconds =
      done_ns > submit_ns ? static_cast<double>(done_ns - submit_ns) * 1e-9
                          : 0.0;
  obs.queue_wait_seconds =
      queue_end_ns > submit_ns
          ? static_cast<double>(queue_end_ns - submit_ns) * 1e-9
          : 0.0;
  cal->Observe(obs);
}

}  // namespace

QueryEngine::QueryEngine(Options options)
    : opts_(std::move(options)),
      calibrator_(opts_.router.calibration),
      router_(opts_.router),
      slow_log_(opts_.slow_query_log_capacity) {
  router_.set_calibrator(&calibrator_);
  slow_threshold_ns_.store(opts_.slow_query_threshold.count(),
                           std::memory_order_relaxed);
  AdmissionController::Options aopts = opts_.admission;
  if (aopts.max_total_cjoin == 0) {
    // Bound engine-wide CJOIN registrations by the operator capacity, so
    // the bit-vector id freelist can never block a submitter (excess
    // load sheds with kResourceExhausted at the admission gate instead).
    aopts.max_total_cjoin = opts_.cjoin.max_concurrent_queries;
  }
  admission_ = std::make_shared<AdmissionController>(aopts);
  baseline_pool_ = std::make_unique<BaselinePool>(opts_.baseline_workers,
                                                  opts_.baseline_max_queued);
  if (opts_.watchdog_enabled) {
    watchdog_ = std::make_unique<obs::Watchdog>(opts_.watchdog);
    watchdog_->AddSampler(
        [this](std::vector<obs::Watchdog::StageSample>& stages,
               std::vector<obs::Watchdog::QueueSample>& queues) {
          SampleForWatchdog(stages, queues);
        });
    watchdog_->Start();
  }
}

QueryEngine::~QueryEngine() { Shutdown(); }

void QueryEngine::Shutdown() {
  {
    // Serialized with SetShardCount (which holds update_mu_ end to end):
    // once the flag is up, no new pool can be built and swapped in.
    MutexLock ulk(&update_mu_);
    if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  }
  // The watchdog samples the pools and the admission controller; stop it
  // before tearing either down.
  if (watchdog_ != nullptr) watchdog_->Stop();
  // Fail parked admission waiters first: their grants would otherwise
  // submit into pools that are about to stop.
  admission_->Shutdown();
  baseline_pool_->Shutdown();
  std::vector<std::shared_ptr<ExecPool>> pools;
  {
    ReaderMutexLock lk(&ops_mu_);
    for (auto& entry : stars_) pools.push_back(entry->pool);
  }
  for (auto& pool : pools) {
    if (pool != nullptr && pool->op != nullptr) pool->op->Stop();
  }
}

bool QueryEngine::Shutdown(std::chrono::nanoseconds drain_timeout) {
  draining_.store(true, std::memory_order_release);
  // Every outstanding ticket is visible in the admission totals: CJOIN
  // registrations, baseline jobs in system (queued + running), and
  // parked wait-queue entries all release on their terminal paths, so
  // zero totals == no outstanding work.
  const int64_t deadline_ns = QueryRuntime::NowNs() + drain_timeout.count();
  bool drained = false;
  while (true) {
    const AdmissionController::Stats stats = admission_->GetStats();
    if (stats.total_cjoin_inflight == 0 &&
        stats.total_baseline_in_system == 0 && stats.total_waiting == 0) {
      drained = true;
      break;
    }
    if (QueryRuntime::NowNs() >= deadline_ns) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Shutdown();
  return drained;
}

Result<std::shared_ptr<QueryEngine::ExecPool>> QueryEngine::MakePool(
    const StarSchema& star, size_t shards, uint64_t disk_reader_base) {
  auto pool = std::make_shared<ExecPool>();
  CJOIN_ASSIGN_OR_RETURN(pool->shards, ShardManager::Make(star, shards));
  ShardedCJoinOperator::Options sopts;
  sopts.op = opts_.cjoin;
  sopts.op.disk_reader_id = disk_reader_base;
  sopts.shard_disks = opts_.cjoin_shard_disks;
  sopts.op.snapshot_probe = [this] {
    return snapshot_.load(std::memory_order_acquire);
  };
  pool->op = std::make_unique<ShardedCJoinOperator>(
      star, pool->shards->shard_stars(), sopts);
  CJOIN_RETURN_IF_ERROR(pool->op->Start());
  return pool;
}

Status QueryEngine::RegisterStar(std::string name, StarSchema star) {
  auto entry = std::make_unique<StarEntry>();
  entry->name = std::move(name);
  entry->star = std::make_unique<StarSchema>(std::move(star));
  // Duplicate check and insert under one exclusive section, so two
  // concurrent registrations of the same name cannot both succeed.
  WriterMutexLock lk(&ops_mu_);
  for (const auto& existing : stars_) {
    if (existing->name == entry->name) {
      return Status::AlreadyExists("star '" + entry->name +
                                   "' already registered");
    }
  }
  CJOIN_ASSIGN_OR_RETURN(
      entry->pool,
      MakePool(*entry->star,
               std::clamp<size_t>(opts_.cjoin_shards, 1, kReaderIdStride),
               stars_.size() * kReaderIdStride));
  stars_.push_back(std::move(entry));
  return Status::OK();
}

Result<const StarSchema*> QueryEngine::FindStar(
    std::string_view name) const {
  const StarEntry* entry = EntryByNameConst(name);
  if (entry == nullptr) {
    return Status::NotFound("no star named '" + std::string(name) + "'");
  }
  return const_cast<const StarSchema*>(entry->star.get());
}

const QueryEngine::StarEntry* QueryEngine::EntryByNameConst(
    std::string_view name) const {
  ReaderMutexLock lk(&ops_mu_);
  for (const auto& entry : stars_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Result<QueryEngine::StarEntry*> QueryEngine::EntryByName(
    std::string_view name) {
  ReaderMutexLock lk(&ops_mu_);
  for (auto& entry : stars_) {
    if (entry->name == name) return entry.get();
  }
  return Status::NotFound("no star named '" + std::string(name) + "'");
}

Result<QueryEngine::StarEntry*> QueryEngine::EntryFor(
    const StarSchema* schema) {
  ReaderMutexLock lk(&ops_mu_);
  for (auto& entry : stars_) {
    if (entry->star.get() == schema) return entry.get();
  }
  // RegisterStar stores a copy of the caller's StarSchema, so accept any
  // structurally equivalent schema — same fact table AND positionally
  // identical dimensions, since specs carry dim_index references (specs
  // are routinely bound against the original); callers rebind
  // spec.schema to the registered instance before submission.
  for (auto& entry : stars_) {
    if (SchemasEquivalent(*entry->star, *schema)) return entry.get();
  }
  return Status::NotFound(
      "query's star schema is not registered (or differs structurally "
      "from the registered star over the same fact table)");
}

std::shared_ptr<QueryEngine::ExecPool> QueryEngine::PoolFor(
    StarEntry* entry) const {
  ReaderMutexLock lk(&ops_mu_);
  return entry->pool;
}

RouteInputs QueryEngine::SampleRouteInputs(
    const ExecPool& pool, const std::string& tenant,
    AdmissionDecision* probe_cjoin,
    AdmissionDecision* probe_baseline) const {
  RouteInputs inputs;
  inputs.inflight = pool.op->InFlight();
  inputs.shards = pool.op->num_shards();
  inputs.baseline_queued = baseline_pool_->queued();
  inputs.baseline_workers = baseline_pool_->workers();
  admission_->SampleForRouting(tenant, &inputs, probe_cjoin,
                               probe_baseline);
  return inputs;
}

Status QueryEngine::SetShardCount(std::string_view star_name,
                                  size_t shards) {
  if (shards == 0) return Status::InvalidArgument("shard count must be >= 1");
  if (shards > kReaderIdStride) {
    // Each star's pool owns a block of kReaderIdStride disk-reader
    // identities; more shards would collide with the next star's scans
    // on a shared SimDisk.
    return Status::InvalidArgument("shard count must be <= " +
                                   std::to_string(kReaderIdStride));
  }
  // Freeze writers: the replica build must see one consistent committed
  // state, and mirrored updates must never straddle two shard sets. The
  // shutdown check lives under the same lock, so a pool can never be
  // built and started after Shutdown swept the existing ones.
  MutexLock ulk(&update_mu_);
  if (shut_down_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine shut down");
  }
  CJOIN_ASSIGN_OR_RETURN(StarEntry * entry, EntryByName(star_name));
  uint64_t reader_base = 0;
  {
    ReaderMutexLock lk(&ops_mu_);
    for (size_t i = 0; i < stars_.size(); ++i) {
      if (stars_[i].get() == entry) reader_base = i * kReaderIdStride;
    }
  }
  // Build and start the replacement pool first; swap, then stop the old
  // pool (its in-flight CJOIN queries resolve with kAborted). Concurrent
  // Execute() calls hold the pool by shared_ptr, so the old shard tables
  // stay alive until the last ticket lets go.
  CJOIN_ASSIGN_OR_RETURN(std::shared_ptr<ExecPool> fresh,
                         MakePool(*entry->star, shards, reader_base));
  std::shared_ptr<ExecPool> old;
  {
    WriterMutexLock lk(&ops_mu_);
    old = std::move(entry->pool);
    entry->pool = std::move(fresh);
  }
  if (old != nullptr && old->op != nullptr) old->op->Stop();
  // The shard count shifts the per-query timing regime (scan laps
  // shrink, pipeline threads multiply): age the calibrator's fits so
  // stale evidence stops steering decisions until fresh queries confirm.
  calibrator_.Decay();
  return Status::OK();
}

Result<size_t> QueryEngine::ShardCount(std::string_view star_name) {
  CJOIN_ASSIGN_OR_RETURN(StarEntry * entry, EntryByName(star_name));
  return PoolFor(entry)->op->num_shards();
}

Result<QueryEngine::StarEntry*> QueryEngine::ResolveRequest(
    QueryRequest* request) {
  StarEntry* entry;
  if (request->spec.schema != nullptr) {
    CJOIN_ASSIGN_OR_RETURN(entry, EntryFor(request->spec.schema));
    request->spec.schema = entry->star.get();
  } else {
    CJOIN_ASSIGN_OR_RETURN(entry, EntryByName(request->star));
    CJOIN_ASSIGN_OR_RETURN(request->spec,
                           ParseStarQuery(*entry->star, request->sql));
  }
  CJOIN_ASSIGN_OR_RETURN(request->spec,
                         NormalizeSpec(std::move(request->spec)));
  if (!request->label.empty()) request->spec.label = request->label;
  if (request->spec.snapshot == kReadLatestSnapshot) {
    request->spec.snapshot = CurrentSnapshot();
  }
  return entry;
}

Result<std::unique_ptr<QueryHandle>> QueryEngine::SubmitToCJoin(
    StarEntry* entry, const std::shared_ptr<ExecPool>& pool,
    StarQuerySpec spec, CJoinOperator::SubmitOptions options) {
  // Exact snapshot semantics under concurrent appends: every shard's
  // continuous scan covers rows up to its last freeze, so while appends
  // beyond the pool-wide covered bound exist, cap the query's snapshot at
  // it (the min over shards — the snapshot then reads identical data on
  // every shard). Deletes never need capping — deleted rows stay inside
  // the scanned ranges and are filtered per row by xmax.
  const SnapshotId covered = pool->op->covered_snapshot();
  if (entry->last_append_snapshot.load(std::memory_order_acquire) >
      covered) {
    spec.snapshot = std::min(spec.snapshot, covered);
  }
  return pool->op->Submit(std::move(spec), std::move(options));
}

Result<std::unique_ptr<QueryTicket>> QueryEngine::Execute(
    QueryRequest request) {
  if (shut_down_) return Status::FailedPrecondition("engine shut down");
  if (draining_.load(std::memory_order_acquire)) {
    // Graceful-shutdown shedding follows the uniform-ticket contract:
    // Execute() succeeds and the refusal resolves through the ticket,
    // so callers (and the wire protocol) see one error path.
    RouteDecision decision;
    decision.reason = "draining";
    decision.admission = "shed (engine draining)";
    return std::make_unique<QueryTicket>(
        std::move(decision), request.label, SnapshotId{0},
        Result<ResultSet>(Status::Aborted("engine draining for shutdown")));
  }
  CJOIN_ASSIGN_OR_RETURN(StarEntry * entry, ResolveRequest(&request));
  std::shared_ptr<ExecPool> pool = PoolFor(entry);
  const std::string tenant = TenantOrDefault(request.tenant);

  // Always-on span trace (skipped entirely when metrics are disabled):
  // every layer this query crosses appends to it through the shared_ptr
  // threaded along the submission.
  std::shared_ptr<obs::QueryTrace> trace;
  if (obs::MetricsEnabled()) {
    trace = std::make_shared<obs::QueryTrace>();
    trace->set_tenant(tenant);
  }

  int64_t deadline_ns = request.deadline_ns;
  if (deadline_ns == 0 && request.timeout.count() > 0) {
    deadline_ns = QueryRuntime::NowNs() + request.timeout.count();
  }

  // §3.2.3: the optimizer choice. A per-query aggregator override is
  // CJOIN machinery, so it forces that path.
  RouteDecision decision;
  RoutePolicy policy = request.aggregator_factory != nullptr
                           ? RoutePolicy::kCJoin
                           : request.policy;
  switch (policy) {
    case RoutePolicy::kCJoin:
      decision.choice = RouteChoice::kCJoin;
      decision.forced = true;
      decision.reason = "policy";
      break;
    case RoutePolicy::kBaseline:
      decision.choice = RouteChoice::kBaseline;
      decision.forced = true;
      decision.reason = "policy";
      break;
    case RoutePolicy::kAuto: {
      const int64_t route0 = trace != nullptr ? obs::NowNs() : 0;
      decision =
          router_.Decide(request.spec, SampleRouteInputs(*pool, tenant));
      if (trace != nullptr) {
        trace->AddSpan(obs::SpanKind::kRoute, decision.explored
                                                  ? "explore"
                                                  : "decide",
                       route0, obs::NowNs());
      }
      break;
    }
  }
  decision.tenant = tenant;
  if (trace != nullptr) trace->set_route(RouteLabel(decision.choice));
  obs::RecordEvent(obs::EventKind::kRoute, RouteLabel(decision.choice));

  // Uniform-ticket contract: an already-expired deadline resolves through
  // the ticket (kDeadlineExceeded from Wait()) on BOTH routes — Execute()
  // itself only fails on submission errors. No quota is consumed.
  if (deadline_ns != 0 && QueryRuntime::NowNs() >= deadline_ns) {
    auto expired = std::make_unique<QueryTicket>(
        std::move(decision), request.spec.label, request.spec.snapshot,
        Result<ResultSet>(
            Status::DeadlineExceeded("deadline expired before submission")));
    expired->set_trace(std::move(trace));
    return expired;
  }

  if (decision.choice == RouteChoice::kCJoin) {
    // The grant closure (and its captured copy of the spec) is built
    // lazily, under the gate's lock, only if the verdict is kQueued —
    // the common admitted / shed paths never pay for it.
    std::shared_ptr<DeferredQuery> deferred;
    AdmissionController::GrantFactory make_grant =
        [&]() -> AdmissionController::GrantFn {
      deferred = std::make_shared<DeferredQuery>();
      deferred->label = request.spec.label;
      deferred->snapshot = request.spec.snapshot;
      deferred->trace = trace;
      deferred->submit_ns.store(QueryRuntime::NowNs(),
                                std::memory_order_relaxed);
      return MakeDeferredGrant(entry, deferred, request.spec,
                               request.aggregator_factory, tenant,
                               deadline_ns,
                               decision.forced ? 0.0
                                               : decision.cjoin_work_units);
    };
    const int64_t adm0 = trace != nullptr ? obs::NowNs() : 0;
    AdmissionDecision ad = admission_->TryAdmit(
        tenant, RouteChoice::kCJoin, deadline_ns, std::move(make_grant));
    if (trace != nullptr) {
      trace->AddSpan(obs::SpanKind::kAdmission,
                     AdmissionOutcomeName(ad.outcome), adm0, obs::NowNs());
    }
    decision.admission = FormatAdmission(ad);
    switch (ad.outcome) {
      case AdmissionOutcome::kAdmitted:
        return SubmitAdmittedCJoin(entry, pool, std::move(request),
                                   std::move(decision), tenant, deadline_ns,
                                   std::move(trace));
      case AdmissionOutcome::kQueued: {
        std::future<Result<ResultSet>> fut = deferred->promise.get_future();
        {
          MutexLock lk(&deferred->mu);
          // The grant may already have fired (and with it the waiter's
          // lifetime). The weak capture covers the remaining race: a
          // copy of this hook taken by Cancel() can run after the
          // engine — and the controller — are gone.
          if (!deferred->waiter_done) {
            deferred->cancel_waiter =
                [weak = std::weak_ptr<AdmissionController>(admission_),
                 id = ad.waiter_id] {
              if (std::shared_ptr<AdmissionController> ctrl = weak.lock()) {
                ctrl->CancelWaiter(id);
              }
            };
          }
        }
        auto queued = std::make_unique<QueryTicket>(
            std::move(decision), std::move(deferred), std::move(fut));
        queued->set_trace(std::move(trace));
        return queued;
      }
      case AdmissionOutcome::kShed: {
        auto shed = std::make_unique<QueryTicket>(
            std::move(decision), request.spec.label, request.spec.snapshot,
            Result<ResultSet>(ad.status));
        shed->set_trace(std::move(trace));
        return shed;
      }
    }
  }

  const int64_t adm0 = trace != nullptr ? obs::NowNs() : 0;
  AdmissionDecision ad =
      admission_->TryAdmit(tenant, RouteChoice::kBaseline, deadline_ns);
  if (trace != nullptr) {
    trace->AddSpan(obs::SpanKind::kAdmission,
                   AdmissionOutcomeName(ad.outcome), adm0, obs::NowNs());
  }
  decision.admission = FormatAdmission(ad);
  if (ad.outcome == AdmissionOutcome::kShed) {
    auto shed = std::make_unique<QueryTicket>(
        std::move(decision), request.spec.label, request.spec.snapshot,
        Result<ResultSet>(ad.status));
    shed->set_trace(std::move(trace));
    return shed;
  }
  auto job = std::make_shared<BaselineJob>();
  job->spec = std::move(request.spec);
  job->options = request.baseline_options.value_or(opts_.baseline);
  job->priority = request.priority;
  job->deadline_ns = deadline_ns;
  job->tenant = tenant;
  job->trace = trace;
  job->fair_weight = admission_->GetTenantQuota(tenant).weight;
  // Quota returns on every terminal path — worker completion, sweeper
  // cancel / deadline, pool shutdown — via the resolve hook; successful
  // kAuto-routed completions also feed the route calibrator. The raw
  // BaselineJob pointer is safe: the hook only runs while the job is
  // being resolved (a shared_ptr capture would be a reference cycle).
  job->on_finished = [ctrl = admission_.get(), eng = this, tenant,
                      cal = &calibrator_,
                      work = decision.forced ? 0.0
                                             : decision.baseline_work_units,
                      j = job.get()](const Result<ResultSet>& result) {
    ctrl->Release(tenant, RouteChoice::kBaseline);
    // Pool-queue residence (submit -> worker start) is waiting, not
    // work: it is attributed out of the fitted service time.
    ObserveCompletion(cal, eng, j->trace, RouteChoice::kBaseline, tenant,
                      work, result,
                      j->submit_ns.load(std::memory_order_relaxed),
                      j->start_ns.load(std::memory_order_relaxed),
                      j->completed_ns.load(std::memory_order_relaxed));
  };
  std::future<Result<ResultSet>> fut = job->promise.get_future();
  if (Status st = baseline_pool_->Enqueue(job); !st.ok()) {
    if (st.code() == StatusCode::kResourceExhausted) {
      // Never entered the pool: the resolve hook will not run, and the
      // caller experienced a shed, not an admitted query.
      admission_->ReleaseAsShed(tenant, RouteChoice::kBaseline);
      decision.admission = "shed (baseline pool queue full)";
      auto shed = std::make_unique<QueryTicket>(
          std::move(decision), job->spec.label, job->spec.snapshot,
          Result<ResultSet>(std::move(st)));
      shed->set_trace(std::move(trace));
      return shed;
    }
    // Pool shut down: Enqueue resolved the promise (kAborted) and the
    // hook released the quota; the ticket surfaces the result.
  }
  auto ticket = std::make_unique<QueryTicket>(std::move(decision),
                                             std::move(job), std::move(fut));
  ticket->set_trace(std::move(trace));
  return ticket;
}

Result<std::unique_ptr<QueryTicket>> QueryEngine::SubmitAdmittedCJoin(
    StarEntry* entry, const std::shared_ptr<ExecPool>& pool,
    QueryRequest request, RouteDecision decision, const std::string& tenant,
    int64_t deadline_ns, std::shared_ptr<obs::QueryTrace> trace) {
  CJoinOperator::SubmitOptions so;
  so.aggregator_factory = std::move(request.aggregator_factory);
  so.deadline_ns = deadline_ns;
  so.assume_normalized = true;  // ResolveRequest normalized already
  so.reject_when_full = true;   // the freelist must never block (ROADMAP)
  so.trace = trace;
  // Quota release first, then the calibrator observation (successful
  // kAuto completions only — an immediately-admitted CJOIN query never
  // waited, so its whole wall clock is service).
  so.completion_observer = [ctrl = admission_.get(), eng = this, trace,
                            tenant, cal = &calibrator_,
                            work = decision.forced ? 0.0
                                                   : decision.cjoin_work_units,
                            submitted = QueryRuntime::NowNs()](
                               const Result<ResultSet>& result) {
    ctrl->Release(tenant, RouteChoice::kCJoin);
    ObserveCompletion(cal, eng, trace, RouteChoice::kCJoin, tenant, work,
                      result, submitted, submitted, QueryRuntime::NowNs());
  };
  const std::string label = request.spec.label;
  const SnapshotId snap = request.spec.snapshot;
  Result<std::unique_ptr<QueryHandle>> handle =
      SubmitToCJoin(entry, pool, std::move(request.spec), std::move(so));
  if (!handle.ok()) {
    // The observer never fired; give the slot back ourselves.
    admission_->Release(tenant, RouteChoice::kCJoin);
    if (handle.status().code() == StatusCode::kResourceExhausted) {
      // Freelist raced ahead of the admission bookkeeping (slots release
      // at Deliver, ids at cleanup): degrade by rejecting, not stalling.
      decision.admission = "shed (pipeline query ids exhausted)";
      auto shed = std::make_unique<QueryTicket>(
          std::move(decision), label, snap,
          Result<ResultSet>(handle.status()));
      shed->set_trace(std::move(trace));
      return shed;
    }
    return handle.status();
  }
  auto ticket = std::make_unique<QueryTicket>(std::move(decision),
                                              std::move(*handle));
  ticket->set_trace(std::move(trace));
  return ticket;
}

AdmissionController::GrantFn QueryEngine::MakeDeferredGrant(
    StarEntry* entry, std::shared_ptr<DeferredQuery> deferred,
    StarQuerySpec spec, AggregatorFactory aggregator, std::string tenant,
    int64_t deadline_ns, double work_units) {
  return [this, entry, deferred = std::move(deferred),
          spec = std::move(spec), aggregator = std::move(aggregator),
          tenant = std::move(tenant), deadline_ns,
          work_units](Status st) mutable {
    // Whatever the outcome, the waiter is out of the controller's queue:
    // drop the waiter-cancel hook so a ticket that outlives the engine
    // cannot call back into a destroyed controller.
    bool cancelled;
    {
      MutexLock lk(&deferred->mu);
      deferred->waiter_done = true;
      deferred->cancel_waiter = nullptr;
      cancelled = deferred->cancelled;
    }
    if (!st.ok()) {
      // Wait timed out / deadline expired / cancelled / shutdown: no slot
      // is held.
      deferred->TryResolve(std::move(st));
      return;
    }
    // The controller consumed one CJOIN slot on this query's behalf.
    const int64_t granted = QueryRuntime::NowNs();
    deferred->granted_ns.store(granted, std::memory_order_relaxed);
    if (deferred->trace != nullptr) {
      deferred->trace->AddSpan(
          obs::SpanKind::kWaitQueue, "",
          deferred->submit_ns.load(std::memory_order_relaxed), granted);
    }
    if (cancelled) {
      admission_->Release(tenant, RouteChoice::kCJoin);
      deferred->TryResolve(
          Status::Cancelled("query cancelled while awaiting admission"));
      return;
    }
    // Grant-time deadline check (the controller re-checks too, but this
    // closes the last gap): a slot granted to an already-expired query
    // must not reach the pipeline — it would hold the slot until the
    // deadline fan-out deregistered it. Return it and resolve without
    // ever binding a handle.
    if (deadline_ns != 0 && QueryRuntime::NowNs() >= deadline_ns) {
      // The query never entered the pipeline: rewrite the slot's
      // admitted+released round trip into the shed the caller actually
      // experienced (matching the controller's own grant-time undo).
      admission_->ReleaseAsShed(tenant, RouteChoice::kCJoin);
      deferred->TryResolve(Status::DeadlineExceeded(
          "query deadline expired before its admission grant ran"));
      return;
    }
    std::shared_ptr<ExecPool> pool = PoolFor(entry);
    CJoinOperator::SubmitOptions so;
    so.aggregator_factory = std::move(aggregator);
    so.deadline_ns = deadline_ns;
    so.assume_normalized = true;
    so.reject_when_full = true;
    so.trace = deferred->trace;
    // This submission runs on the controller's single service thread,
    // where every per-shard grace wait head-of-line delays other grants
    // and waiter expiries — and the slot that granted us was released at
    // delivery, so its id is only a prompt pipeline-cleanup away. Keep
    // the bridge short.
    so.id_acquire_grace_ns = 50'000'000;
    // Forward the query's terminal result into the deferred ticket (its
    // handle's own future is never consumed); quota releases first. A
    // successful kAuto completion feeds the calibrator: the wait-queue
    // residence (submit -> grant) is attributed to queueing, the rest
    // is CJOIN service.
    so.completion_observer = [ctrl = admission_.get(), eng = this, deferred,
                              tenant, cal = &calibrator_,
                              work_units](const Result<ResultSet>& result) {
      ctrl->Release(tenant, RouteChoice::kCJoin);
      ObserveCompletion(cal, eng, deferred->trace, RouteChoice::kCJoin,
                        tenant, work_units, result,
                        deferred->submit_ns.load(std::memory_order_relaxed),
                        deferred->granted_ns.load(std::memory_order_relaxed),
                        QueryRuntime::NowNs());
      deferred->TryResolve(result);
    };
    Result<std::unique_ptr<QueryHandle>> handle =
        SubmitToCJoin(entry, pool, std::move(spec), std::move(so));
    if (!handle.ok()) {
      admission_->Release(tenant, RouteChoice::kCJoin);
      deferred->TryResolve(handle.status());
      return;
    }
    bool cancel_now;
    {
      MutexLock lk(&deferred->mu);
      deferred->handle = std::move(*handle);
      cancel_now = deferred->cancelled;
    }
    // A cancel that raced the bind found no handle and no waiter; honor
    // it now (QueryHandle::Cancel is thread-safe and idempotent).
    if (cancel_now) {
      MutexLock lk(&deferred->mu);
      if (deferred->handle != nullptr) deferred->handle->Cancel();
    }
  };
}

Result<RouteDecision> QueryEngine::ProbeRoute(QueryRequest request) {
  // Same resolution pipeline as Execute(), so the verdict is exactly the
  // decision Execute() would make right now — the load inputs AND both
  // routes' admission probes are sampled under one controller lock
  // acquisition (the old code sampled load, then probed separately, so
  // the printed admission verdict could describe a different instant
  // than the costs). DecideMode::kProbe keeps the probe side-effect
  // free: no decision counters, no exploration tick, no quota consumed.
  CJOIN_ASSIGN_OR_RETURN(StarEntry * entry, ResolveRequest(&request));
  std::shared_ptr<ExecPool> pool = PoolFor(entry);
  const std::string t = TenantOrDefault(request.tenant);
  AdmissionDecision probe_cjoin, probe_baseline;
  const RouteInputs inputs =
      SampleRouteInputs(*pool, t, &probe_cjoin, &probe_baseline);
  RouteDecision decision =
      router_.Decide(request.spec, inputs, DecideMode::kProbe);
  decision.tenant = t;
  decision.admission =
      FormatAdmission(decision.choice == RouteChoice::kCJoin
                          ? probe_cjoin
                          : probe_baseline);
  return decision;
}

Result<RouteDecision> QueryEngine::ExplainRoute(StarQuerySpec spec,
                                                std::string_view tenant) {
  QueryRequest request = QueryRequest::FromSpec(std::move(spec));
  request.tenant = std::string(tenant);
  return ProbeRoute(std::move(request));
}

Result<RouteDecision> QueryEngine::ExplainRoute(std::string_view star_name,
                                                std::string_view sql,
                                                std::string_view tenant) {
  QueryRequest request =
      QueryRequest::Sql(std::string(star_name), std::string(sql));
  request.tenant = std::string(tenant);
  return ProbeRoute(std::move(request));
}

Status QueryEngine::SetTenantQuota(std::string_view tenant,
                                   TenantQuota quota) {
  Status st = admission_->SetTenantQuota(TenantOrDefault(std::string(tenant)),
                                         quota);
  // Rebalanced quotas change slot scarcity and fair pool shares —
  // queueing regimes the fits were observed under. Age them.
  if (st.ok()) calibrator_.Decay();
  return st;
}

TenantQuota QueryEngine::GetTenantQuota(std::string_view tenant) const {
  return admission_->GetTenantQuota(TenantOrDefault(std::string(tenant)));
}

AdmissionController::Stats QueryEngine::AdmissionStats() const {
  return admission_->GetStats();
}

void QueryEngine::SampleForWatchdog(
    std::vector<obs::Watchdog::StageSample>& stages,
    std::vector<obs::Watchdog::QueueSample>& queues) {
  if (shut_down_.load(std::memory_order_acquire)) return;
  std::vector<std::pair<std::string, std::shared_ptr<ExecPool>>> pools;
  {
    ReaderMutexLock lk(&ops_mu_);
    for (const auto& entry : stars_) {
      pools.emplace_back(entry->name, entry->pool);
    }
  }
  for (const auto& [star, pool] : pools) {
    if (pool == nullptr || pool->op == nullptr) continue;
    const std::vector<CJoinOperator::Stats> shards = pool->op->PerShardStats();
    for (size_t s = 0; s < shards.size(); ++s) {
      const CJoinOperator::Stats& st = shards[s];
      const std::string prefix = star + "/s" + std::to_string(s) + "/";
      // The continuous scan must advance whenever queries are registered;
      // rows_scanned frozen with active queries is the canonical stall.
      obs::Watchdog::StageSample scan;
      scan.name = prefix + "scan";
      scan.progress = st.rows_scanned;
      scan.backlog = st.active_queries;
      stages.push_back(std::move(scan));
      for (size_t i = 0; i < st.stage_batches.size(); ++i) {
        obs::Watchdog::StageSample stage;
        stage.name = prefix + "stage" + std::to_string(i);
        stage.progress = st.stage_batches[i];
        stage.backlog = i < st.queue_depths.size() ? st.queue_depths[i] : 0;
        stages.push_back(std::move(stage));
      }
      for (size_t q = 0; q < st.queue_depths.size(); ++q) {
        obs::Watchdog::QueueSample qs;
        qs.name = prefix + "q" + std::to_string(q);
        qs.depth = st.queue_depths[q];
        qs.capacity = st.queue_capacity;
        queues.push_back(std::move(qs));
      }
    }
  }
  const AdmissionController::Stats adm = admission_->GetStats();
  obs::Watchdog::StageSample gate;
  gate.name = "admission";
  uint64_t granted = 0;
  for (const auto& t : adm.tenants) granted += t.admitted;
  gate.progress = granted;
  gate.backlog = adm.total_waiting;
  gate.min_deadline_ns = adm.earliest_waiter_deadline_ns;
  stages.push_back(std::move(gate));
}

Result<ResultSet> QueryEngine::ExecuteGalaxyJoin(const GalaxyJoinSpec& spec) {
  CJOIN_ASSIGN_OR_RETURN(StarEntry * lentry, EntryFor(spec.left.schema));
  CJOIN_ASSIGN_OR_RETURN(StarEntry * rentry, EntryFor(spec.right.schema));
  if (spec.left_join_col >= lentry->star->fact().schema().num_columns() ||
      spec.right_join_col >= rentry->star->fact().schema().num_columns()) {
    return Status::InvalidArgument("galaxy join column out of range");
  }

  // Projections per side, deduplicated; remember where each output lands.
  std::vector<ColumnSource> proj[2];
  auto project = [&](int side, const ColumnSource& src) -> size_t {
    auto& p = proj[side];
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i] == src) return i;
    }
    p.push_back(src);
    return p.size() - 1;
  };
  struct OutRef {
    int side;
    size_t index;
  };
  std::vector<OutRef> key_refs;
  for (const auto& g : spec.group_by) {
    if (g.side != 0 && g.side != 1) {
      return Status::InvalidArgument("galaxy output side must be 0 or 1");
    }
    key_refs.push_back({g.side, project(g.side, g.source)});
  }
  std::vector<OutRef> agg_refs;
  std::vector<AggFn> fns;
  for (const auto& a : spec.aggregates) {
    if (a.side != 0 && a.side != 1) {
      return Status::InvalidArgument("galaxy output side must be 0 or 1");
    }
    fns.push_back(a.fn);
    if (a.input.has_value()) {
      agg_refs.push_back({a.side, project(a.side, *a.input)});
    } else {
      agg_refs.push_back({a.side, SIZE_MAX});  // COUNT(*)
    }
  }

  // Run both star sub-queries concurrently through the unified Execute()
  // path with collector sinks (§5: "the Distributor pipes the results of
  // Qi to a fact-to-fact join operator instead of an aggregation
  // operator"). Both sides read the same snapshot and share the request
  // deadline; if one side fails, the other is cancelled.
  CollectedSide sides[2];
  const StarSchema* schemas[2] = {lentry->star.get(), rentry->star.get()};
  const size_t join_cols[2] = {spec.left_join_col, spec.right_join_col};
  StarQuerySpec sub[2] = {spec.left, spec.right};
  const SnapshotId snap = CurrentSnapshot();
  std::unique_ptr<QueryTicket> tickets[2];
  for (int s = 0; s < 2; ++s) {
    if (sub[s].snapshot == kReadLatestSnapshot) sub[s].snapshot = snap;
    CollectedSide* out = &sides[s];
    const StarSchema* star = schemas[s];
    const size_t jcol = join_cols[s];
    std::vector<ColumnSource> projection = proj[s];
    QueryRequest req = QueryRequest::FromSpec(sub[s]);
    req.deadline_ns = spec.deadline_ns;
    req.aggregator_factory = [star, jcol, projection,
                              out](const StarQuerySpec&) {
      return std::make_unique<CollectorAggregator>(*star, jcol, projection,
                                                   out);
    };
    auto ticket = Execute(std::move(req));
    if (!ticket.ok()) {
      if (s == 1) {
        // Must drain the other side before returning: its collector
        // writes into this frame's `sides` until its query terminates.
        tickets[0]->Cancel();
        (void)tickets[0]->Wait();
      }
      return ticket.status();
    }
    tickets[s] = std::move(*ticket);
  }
  Result<ResultSet> left_rs = tickets[0]->Wait();
  if (!left_rs.ok()) {
    // Drain the right side before returning: its collector writes into
    // this frame's `sides` until its query terminates. (Wait is
    // single-shot, so the right side is only waited here, once.)
    tickets[1]->Cancel();
    (void)tickets[1]->Wait();
    return left_rs.status();
  }
  Result<ResultSet> right_rs = tickets[1]->Wait();
  if (!right_rs.ok()) return right_rs.status();

  // Hash join: build on the smaller side.
  const int build = sides[0].keys.size() <= sides[1].keys.size() ? 0 : 1;
  const int probe = 1 - build;
  std::multimap<int64_t, size_t> index;
  for (size_t i = 0; i < sides[build].keys.size(); ++i) {
    index.emplace(sides[build].keys[i], i);
  }

  GroupTable table(fns);
  std::vector<Value> inputs(fns.size());
  for (size_t pi = 0; pi < sides[probe].keys.size(); ++pi) {
    auto [lo, hi] = index.equal_range(sides[probe].keys[pi]);
    for (auto it = lo; it != hi; ++it) {
      const size_t bi = it->second;
      auto value_of = [&](const OutRef& ref) -> Value {
        const size_t row = ref.side == probe ? pi : bi;
        return sides[ref.side].values[row][ref.index];
      };
      std::vector<Value> key;
      key.reserve(key_refs.size());
      for (const OutRef& ref : key_refs) key.push_back(value_of(ref));
      for (size_t a = 0; a < fns.size(); ++a) {
        inputs[a] =
            agg_refs[a].index == SIZE_MAX ? Value() : value_of(agg_refs[a]);
      }
      table.Fold(std::move(key), inputs);
    }
  }

  std::vector<std::string> columns;
  for (const auto& g : spec.group_by) columns.push_back(g.label);
  for (const auto& a : spec.aggregates) columns.push_back(a.label);
  ResultSet rs =
      table.Finish(std::move(columns),
                   /*global_row_when_empty=*/spec.group_by.empty());
  rs.tuples_consumed = sides[0].keys.size() + sides[1].keys.size();
  return rs;
}

Result<SnapshotId> QueryEngine::AppendFacts(
    std::string_view star_name, const std::vector<std::vector<uint8_t>>& rows,
    uint32_t partition) {
  CJOIN_ASSIGN_OR_RETURN(StarEntry * entry, EntryByName(star_name));
  Table& fact = *const_cast<Table*>(&entry->star->fact());
  MutexLock lk(&update_mu_);
  std::shared_ptr<ExecPool> pool = PoolFor(entry);
  const SnapshotId commit = snapshot_.load(std::memory_order_relaxed) + 1;
  if (partition >= fact.num_partitions()) {
    return Status::InvalidArgument("partition out of range");
  }
  for (const auto& payload : rows) {
    if (payload.size() != fact.schema().row_size()) {
      return Status::InvalidArgument("row payload size mismatch");
    }
    fact.AppendRow(payload.data(), partition, commit);
    // Mirror into the owning shard replica under the same commit, so
    // every shard's next lap freeze exposes the row at one snapshot.
    pool->shards->MirrorAppend(payload.data(), partition, commit);
  }
  snapshot_.store(commit, std::memory_order_release);
  entry->last_append_snapshot.store(commit, std::memory_order_release);
  return commit;
}

Result<SnapshotId> QueryEngine::DeleteFacts(std::string_view star_name,
                                            const ExprPtr& predicate) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("delete predicate is null");
  }
  CJOIN_ASSIGN_OR_RETURN(StarEntry * entry, EntryByName(star_name));
  Table& fact = *const_cast<Table*>(&entry->star->fact());
  const Schema& fs = fact.schema();
  MutexLock lk(&update_mu_);
  std::shared_ptr<ExecPool> pool = PoolFor(entry);
  const SnapshotId commit = snapshot_.load(std::memory_order_relaxed) + 1;
  for (uint32_t p = 0; p < fact.num_partitions(); ++p) {
    const uint64_t n = fact.PartitionRows(p);
    for (uint64_t i = 0; i < n; ++i) {
      const RowId id{p, i};
      if (fact.Header(id)->LoadXmax() != kMaxSnapshot) continue;
      if (!predicate->EvalBool(fs, fact.RowPayload(id))) continue;
      CJOIN_RETURN_IF_ERROR(fact.MarkDeleted(id, commit));
    }
  }
  CJOIN_RETURN_IF_ERROR(pool->shards->MirrorDelete(*predicate, commit));
  snapshot_.store(commit, std::memory_order_release);
  return commit;
}

Result<ShardedCJoinOperator*> QueryEngine::OperatorFor(
    std::string_view star_name) {
  CJOIN_ASSIGN_OR_RETURN(StarEntry * entry, EntryByName(star_name));
  return PoolFor(entry)->op.get();
}

}  // namespace cjoin
