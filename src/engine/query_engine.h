// QueryEngine: the system facade around the CJOIN operator.
//
// Owns the galaxy of star schemas, one always-on CJoinOperator per fact
// table, the snapshot counter for snapshot-isolated updates (§3.5), a
// worker pool for the conventional (query-at-a-time) executor, and the
// cost-based Router that makes CJOIN "yet one more choice for the
// database query optimizer" (§3.2.3).
//
// Execute(QueryRequest) is the single submission path: every query —
// structured or SQL, CJOIN-routed or baseline-routed — returns the same
// non-blocking QueryTicket with uniform wait/cancel/deadline/stats
// semantics. The legacy Submit()/ExecuteBaseline() entry points remain as
// thin deprecated wrappers over the same machinery.

#ifndef CJOIN_ENGINE_QUERY_ENGINE_H_
#define CJOIN_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/qat_engine.h"
#include "catalog/star_schema.h"
#include "cjoin/cjoin_operator.h"
#include "engine/baseline_pool.h"
#include "engine/query_api.h"
#include "engine/router.h"
#include "engine/sql_parser.h"

namespace cjoin {

class QueryEngine {
 public:
  struct Options {
    CJoinOperator::Options cjoin;
    QatOptions baseline;
    /// Worker threads executing baseline-routed queries.
    size_t baseline_workers = 2;
    /// Cost-model coefficients for kAuto routing.
    RouterOptions router;
  };

  explicit QueryEngine(Options options);
  QueryEngine() : QueryEngine(Options{}) {}
  ~QueryEngine();

  /// Registers a star schema under `name` and starts its CJOIN operator.
  Status RegisterStar(std::string name, StarSchema star);

  Result<const StarSchema*> FindStar(std::string_view name) const;

  // --- The unified query path ----------------------------------------------

  /// Submits a query — structured spec or SQL — and returns a uniform
  /// non-blocking ticket, whichever engine it is routed to. Snapshot
  /// defaults to the engine's current snapshot; kAuto policy consults the
  /// cost-based Router (§3.2.3).
  Result<std::unique_ptr<QueryTicket>> Execute(QueryRequest request);

  /// The routing decision Execute() would make for this SQL right now,
  /// without running the query (the shell's EXPLAIN ROUTE).
  Result<RouteDecision> ExplainRoute(std::string_view star_name,
                                     std::string_view sql);
  Result<RouteDecision> ExplainRoute(StarQuerySpec spec);

  // --- Deprecated entry points (thin wrappers; to be removed) ---------------

  /// DEPRECATED: use Execute() with RoutePolicy::kCJoin. Submits a star
  /// query to the CJOIN operator of its star.
  Result<std::unique_ptr<QueryHandle>> Submit(StarQuerySpec spec);

  /// DEPRECATED: use Execute(QueryRequest::Sql(...)) with kCJoin.
  Result<std::unique_ptr<QueryHandle>> SubmitSql(std::string_view star_name,
                                                 std::string_view sql);

  /// DEPRECATED: use Execute() with RoutePolicy::kBaseline (blocking).
  Result<ResultSet> ExecuteBaseline(StarQuerySpec spec);

  /// DEPRECATED: use Execute() with RoutePolicy::kBaseline (blocking).
  Result<ResultSet> ExecuteBaselineSql(std::string_view star_name,
                                       std::string_view sql);

  // --- Galaxy queries (§5) ---------------------------------------------------

  /// A fact-to-fact join query over two stars, expressed as two star
  /// sub-queries pivoted on one fact column from each side.
  struct GalaxyJoinSpec {
    StarQuerySpec left;
    StarQuerySpec right;
    /// Fact-table columns equated by the fact-to-fact join.
    size_t left_join_col = 0;
    size_t right_join_col = 0;

    /// Output column: side 0 = left star, 1 = right star.
    struct OutputColumn {
      int side = 0;
      ColumnSource source;
      std::string label;
    };
    std::vector<OutputColumn> group_by;
    struct OutputAggregate {
      AggFn fn = AggFn::kCount;
      int side = 0;
      std::optional<ColumnSource> input;  // nullopt = COUNT(*)
      std::string label;
    };
    std::vector<OutputAggregate> aggregates;

    /// Absolute deadline (steady-clock nanos; 0 = none) applied to both
    /// star sub-queries through the unified lifecycle.
    int64_t deadline_ns = 0;
  };

  /// Evaluates a galaxy join: both star sub-queries are submitted through
  /// Execute() (sharing the unified lifecycle — snapshot capping,
  /// deadlines, cancellation) and run concurrently in their stars' CJOIN
  /// operators; their result streams meet in a hash join, then aggregate.
  /// If one side fails, the other is cancelled.
  Result<ResultSet> ExecuteGalaxyJoin(const GalaxyJoinSpec& spec);

  // --- Updates (§3.5) --------------------------------------------------------

  /// Current snapshot id; queries submitted without an explicit snapshot
  /// read this snapshot.
  SnapshotId CurrentSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Appends fact rows (payload vectors of the fact schema's row size) to
  /// the named star's fact table as one transaction; returns the snapshot
  /// at which they became visible. New rows are observed by the
  /// continuous scan from its next lap (storage freezes sizes per lap).
  Result<SnapshotId> AppendFacts(std::string_view star_name,
                                 const std::vector<std::vector<uint8_t>>& rows,
                                 uint32_t partition = 0);

  /// Deletes fact rows matching `predicate` (over the fact schema) as one
  /// transaction; returns the first snapshot that no longer sees them.
  Result<SnapshotId> DeleteFacts(std::string_view star_name,
                                 const ExprPtr& predicate);

  /// The CJOIN operator of a registered star (for stats and tests).
  Result<CJoinOperator*> OperatorFor(std::string_view star_name);

  void Shutdown();

 private:
  struct StarEntry {
    std::string name;
    std::unique_ptr<StarSchema> star;
    std::unique_ptr<CJoinOperator> op;
    /// Snapshot of the newest committed append to this star's fact table.
    /// Queries are snapshot-capped only while appends beyond the scan's
    /// covered bound exist (deletes are always within scanned ranges).
    std::atomic<SnapshotId> last_append_snapshot{0};
  };

  Result<StarEntry*> EntryFor(const StarSchema* schema);
  Result<StarEntry*> EntryByName(std::string_view name);

  /// Resolves a request's spec (parsing SQL if needed), normalizes it,
  /// and defaults its snapshot; returns the owning star entry.
  Result<StarEntry*> ResolveRequest(QueryRequest* request);

  /// Submits a normalized spec to the star's CJOIN operator with exact
  /// snapshot capping under concurrent appends. Shared by Execute() and
  /// the deprecated Submit().
  Result<std::unique_ptr<QueryHandle>> SubmitToCJoin(
      StarEntry* entry, StarQuerySpec spec,
      CJoinOperator::SubmitOptions options);

  Options opts_;
  Router router_;
  std::unique_ptr<BaselinePool> baseline_pool_;
  std::vector<std::unique_ptr<StarEntry>> stars_;
  std::atomic<SnapshotId> snapshot_{1};
  std::mutex update_mu_;  // serializes writers (single-writer storage)
  bool shut_down_ = false;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_QUERY_ENGINE_H_
