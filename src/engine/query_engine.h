// QueryEngine: the system facade around the CJOIN operator pool.
//
// Owns the galaxy of star schemas, one always-on pool of CJOIN pipeline
// instances per fact table (a ShardManager hash-partitions the fact table
// and a ShardedCJoinOperator drives one full pipeline per shard; one shard
// — the default — degenerates to exactly the paper's single operator),
// the snapshot counter for snapshot-isolated updates (§3.5), a worker
// pool for the conventional (query-at-a-time) executor, and the
// cost-based Router that makes CJOIN "yet one more choice for the
// database query optimizer" (§3.2.3).
//
// Execute(QueryRequest) is the single submission path: every query —
// structured or SQL, CJOIN-routed or baseline-routed — returns the same
// non-blocking QueryTicket with uniform wait/cancel/deadline/stats
// semantics.

#ifndef CJOIN_ENGINE_QUERY_ENGINE_H_
#define CJOIN_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/qat_engine.h"
#include "catalog/star_schema.h"
#include "cjoin/cjoin_operator.h"
#include "cjoin/sharded_operator.h"
#include "common/mutex.h"
#include "engine/admission.h"
#include "engine/baseline_pool.h"
#include "engine/query_api.h"
#include "engine/route_feedback.h"
#include "engine/router.h"
#include "engine/shard_manager.h"
#include "engine/sql_parser.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/slow_query_log.h"
#include "obs/watchdog.h"

namespace cjoin {

class QueryEngine {
 public:
  struct Options {
    CJoinOperator::Options cjoin;
    /// Parallel CJOIN pipeline instances per star: the fact table is
    /// hash-partitioned into this many shards, each with its own
    /// continuous scan. 1 (the default) is the classic single operator;
    /// clamped to 64 (each star owns a 64-wide disk-reader-id block).
    size_t cjoin_shards = 1;
    /// Per-shard disk devices (shard s uses entry s % size): models shard
    /// placement on independent volumes. Empty = all shards share
    /// cjoin.disk.
    std::vector<SimDisk*> cjoin_shard_disks;
    QatOptions baseline;
    /// Worker threads executing baseline-routed queries.
    size_t baseline_workers = 2;
    /// Bound on jobs waiting in the baseline pool (0 = unbounded). Over
    /// the cap, tickets resolve with kResourceExhausted.
    size_t baseline_max_queued = 0;
    /// Cost-model coefficients for kAuto routing.
    RouterOptions router;
    /// Multi-tenant admission control. max_total_cjoin defaults (0) to
    /// cjoin.max_concurrent_queries, so the bit-vector id freelist can
    /// never block a submitter.
    AdmissionController::Options admission;
    /// Completed queries at or above this end-to-end latency have their
    /// span trace captured into the slow-query log (0 disables capture).
    /// Runtime-adjustable via set_slow_query_threshold (the shell's
    /// `\slowlog <ms>`).
    std::chrono::nanoseconds slow_query_threshold{0};
    /// Retained slow-query entries; older entries are evicted.
    size_t slow_query_log_capacity = 32;
    /// Run the stall watchdog over the engine's progress counters, queue
    /// depths, and admission wait queue (off by default; the server
    /// enables it). watchdog.dump_path makes every trip auto-dump the
    /// flight recorder.
    bool watchdog_enabled = false;
    obs::Watchdog::Options watchdog;
  };

  explicit QueryEngine(Options options);
  QueryEngine() : QueryEngine(Options{}) {}
  ~QueryEngine();

  /// Registers a star schema under `name`, shards its fact table
  /// (Options::cjoin_shards ways), and starts its CJOIN pipeline pool.
  Status RegisterStar(std::string name, StarSchema star);

  Result<const StarSchema*> FindStar(std::string_view name) const;

  // --- The unified query path ----------------------------------------------

  /// Submits a query — structured spec or SQL — and returns a uniform
  /// non-blocking ticket, whichever engine it is routed to. Snapshot
  /// defaults to the engine's current snapshot; kAuto policy consults the
  /// cost-based Router (§3.2.3).
  Result<std::unique_ptr<QueryTicket>> Execute(QueryRequest request);

  /// The routing decision Execute() would make for this SQL right now,
  /// without running the query (the shell's EXPLAIN ROUTE). `tenant`
  /// prices the verdict — including the admission outcome (admitted /
  /// queued / shed) — for that tenant without consuming any quota.
  Result<RouteDecision> ExplainRoute(std::string_view star_name,
                                     std::string_view sql,
                                     std::string_view tenant = {});
  Result<RouteDecision> ExplainRoute(StarQuerySpec spec,
                                     std::string_view tenant = {});

  // --- Admission control & multi-tenant scheduling --------------------------

  /// Installs / replaces a tenant's quota on the live engine (mirrors
  /// SetShardCount's runtime elasticity): the next admission sees the new
  /// limits; raised CJOIN budgets grant parked waiters immediately.
  Status SetTenantQuota(std::string_view tenant, TenantQuota quota);
  TenantQuota GetTenantQuota(std::string_view tenant) const;

  /// Point-in-time admission state: engine totals plus per-tenant
  /// in-flight / queued / shed counters (the shell's \admission).
  AdmissionController::Stats AdmissionStats() const;

  // --- Router feedback loop --------------------------------------------------

  /// Decision counters plus the calibration state — the per-route fits
  /// of observed service seconds on predicted work units that the
  /// Router consults once warm (the shell's \calibration).
  RouterStats GetRouterStats() const { return calibrator_.Stats(); }

  // --- Observability ---------------------------------------------------------

  /// The metrics registry every engine layer records into (the engine
  /// uses the process-global instance; exposed here so serving layers
  /// can snapshot it without reaching for the global). Rendered as JSON
  /// through the STATS wire frame and as Prometheus text by \metrics.
  obs::MetricsRegistry& metrics() const {
    return obs::MetricsRegistry::Global();
  }

  /// The engine's slow-query log. Entries accrue only while the
  /// threshold is nonzero; the log itself is always safe to read.
  obs::SlowQueryLog& slow_query_log() { return slow_log_; }
  const obs::SlowQueryLog& slow_query_log() const { return slow_log_; }

  /// Runtime slow-query capture threshold (0 = off). Takes effect on
  /// the next completion; no queries are re-examined retroactively.
  void set_slow_query_threshold(std::chrono::nanoseconds threshold) {
    slow_threshold_ns_.store(threshold.count(), std::memory_order_relaxed);
  }
  std::chrono::nanoseconds slow_query_threshold() const {
    return std::chrono::nanoseconds(
        slow_threshold_ns_.load(std::memory_order_relaxed));
  }

  /// The stall watchdog (null unless Options::watchdog_enabled).
  obs::Watchdog* watchdog() { return watchdog_.get(); }

  // --- Sharding (runtime elasticity) ----------------------------------------

  /// Re-shards the named star's fact table into `shards` parallel CJOIN
  /// pipelines. The replacement pool is built and started from the current
  /// committed table state before the old pool is stopped; CJOIN queries
  /// still in flight on the old pool complete with kAborted (callers see
  /// it through their tickets). Updates are serialized against the
  /// rebuild, so no committed row is lost.
  Status SetShardCount(std::string_view star_name, size_t shards);

  /// Current shard count of the named star's pipeline pool.
  Result<size_t> ShardCount(std::string_view star_name);

  // --- Galaxy queries (§5) ---------------------------------------------------

  /// A fact-to-fact join query over two stars, expressed as two star
  /// sub-queries pivoted on one fact column from each side.
  struct GalaxyJoinSpec {
    StarQuerySpec left;
    StarQuerySpec right;
    /// Fact-table columns equated by the fact-to-fact join.
    size_t left_join_col = 0;
    size_t right_join_col = 0;

    /// Output column: side 0 = left star, 1 = right star.
    struct OutputColumn {
      int side = 0;
      ColumnSource source;
      std::string label;
    };
    std::vector<OutputColumn> group_by;
    struct OutputAggregate {
      AggFn fn = AggFn::kCount;
      int side = 0;
      std::optional<ColumnSource> input;  // nullopt = COUNT(*)
      std::string label;
    };
    std::vector<OutputAggregate> aggregates;

    /// Absolute deadline (steady-clock nanos; 0 = none) applied to both
    /// star sub-queries through the unified lifecycle.
    int64_t deadline_ns = 0;
  };

  /// Evaluates a galaxy join: both star sub-queries are submitted through
  /// Execute() (sharing the unified lifecycle — snapshot capping,
  /// deadlines, cancellation) and run concurrently in their stars' CJOIN
  /// pools; their result streams meet in a hash join, then aggregate.
  /// If one side fails, the other is cancelled.
  Result<ResultSet> ExecuteGalaxyJoin(const GalaxyJoinSpec& spec);

  // --- Updates (§3.5) --------------------------------------------------------

  /// Current snapshot id; queries submitted without an explicit snapshot
  /// read this snapshot.
  SnapshotId CurrentSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Appends fact rows (payload vectors of the fact schema's row size) to
  /// the named star's fact table as one transaction — mirrored into every
  /// shard replica under the same commit snapshot — and returns the
  /// snapshot at which they became visible. New rows are observed by each
  /// shard's continuous scan from its next lap (storage freezes sizes per
  /// lap).
  Result<SnapshotId> AppendFacts(std::string_view star_name,
                                 const std::vector<std::vector<uint8_t>>& rows,
                                 uint32_t partition = 0);

  /// Deletes fact rows matching `predicate` (over the fact schema) as one
  /// transaction, mirrored into every shard replica; returns the first
  /// snapshot that no longer sees them.
  Result<SnapshotId> DeleteFacts(std::string_view star_name,
                                 const ExprPtr& predicate);

  /// The CJOIN pipeline pool of a registered star (for stats and tests).
  /// The pointer is invalidated by SetShardCount on the same star.
  Result<ShardedCJoinOperator*> OperatorFor(std::string_view star_name);

  /// Hard stop: fails parked admission waiters, stops the baseline pool,
  /// and stops every CJOIN pipeline pool (in-flight CJOIN queries
  /// complete with kAborted through their tickets). Idempotent; called
  /// by the destructor.
  void Shutdown();

  /// Graceful drain, then stop — the SIGINT/SIGTERM path of the serving
  /// front-end. New Execute() submissions resolve immediately with
  /// kAborted through the uniform ticket (Execute itself keeps
  /// succeeding); in-flight queries keep running until the admission
  /// totals (CJOIN registrations, baseline jobs in system, wait-queue
  /// occupancy) reach zero or `drain_timeout` elapses; then the engine
  /// hard-stops, aborting any stragglers. Returns true iff all
  /// outstanding work completed within the timeout.
  bool Shutdown(std::chrono::nanoseconds drain_timeout);

  /// True once Shutdown(drain_timeout) began refusing new work.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  /// One star's execution pool: the shard set and the operator pool over
  /// it. Swapped wholesale (shared_ptr) by SetShardCount so concurrent
  /// Execute() calls holding the old pool stay memory-safe; `op` is
  /// declared after `shards` because it references the shard stars.
  struct ExecPool {
    std::unique_ptr<ShardManager> shards;
    std::unique_ptr<ShardedCJoinOperator> op;
  };

  struct StarEntry {
    std::string name;
    std::unique_ptr<StarSchema> star;
    /// Guarded by the engine's ops_mu_ (thread-safety annotations cannot
    /// name an enclosing object's mutex from a nested struct, so the
    /// contract is documented here and enforced at the access sites:
    /// PoolFor / SetShardCount).
    std::shared_ptr<ExecPool> pool;
    /// Snapshot of the newest committed append to this star's fact table.
    /// Queries are snapshot-capped only while appends beyond the scan's
    /// covered bound exist (deletes are always within scanned ranges).
    std::atomic<SnapshotId> last_append_snapshot{0};
  };

  Result<StarEntry*> EntryFor(const StarSchema* schema) EXCLUDES(ops_mu_);
  Result<StarEntry*> EntryByName(std::string_view name) EXCLUDES(ops_mu_);
  const StarEntry* EntryByNameConst(std::string_view name) const
      EXCLUDES(ops_mu_);

  /// Snapshot of the star's current pool (safe against SetShardCount).
  std::shared_ptr<ExecPool> PoolFor(StarEntry* entry) const
      EXCLUDES(ops_mu_);

  /// Load inputs the Router prices: one sampling point shared by
  /// Execute() and ExplainRoute(), so their verdicts cannot diverge.
  /// Includes `tenant`'s admission state (slot occupancy, pool share),
  /// sampled under ONE controller lock acquisition together with the
  /// optional per-route admission probes (EXPLAIN ROUTE's verdict line
  /// therefore cannot disagree with the load its costs were priced on).
  RouteInputs SampleRouteInputs(const ExecPool& pool,
                                const std::string& tenant,
                                AdmissionDecision* probe_cjoin = nullptr,
                                AdmissionDecision* probe_baseline =
                                    nullptr) const;

  /// Shared EXPLAIN ROUTE core: the decision Execute() would make for
  /// the resolved request right now (DecideMode::kProbe — no counters,
  /// no exploration, no quota consumed).
  Result<RouteDecision> ProbeRoute(QueryRequest request);

  /// Submits an admitted CJOIN request. On kResourceExhausted from the
  /// non-blocking pipeline admission the quota is released and the error
  /// surfaces through an immediate ticket; other submission errors
  /// propagate as a status.
  Result<std::unique_ptr<QueryTicket>> SubmitAdmittedCJoin(
      StarEntry* entry, const std::shared_ptr<ExecPool>& pool,
      QueryRequest request, RouteDecision decision,
      const std::string& tenant, int64_t deadline_ns,
      std::shared_ptr<obs::QueryTrace> trace);

  /// Grant callback of a wait-queued CJOIN submission: on an OK grant
  /// (slot consumed by the controller) performs the deferred pipeline
  /// submission — unless the request's deadline already expired, in
  /// which case the slot is returned and the ticket resolves
  /// kDeadlineExceeded without ever binding a handle — and binds the
  /// handle into `deferred`; on a terminal grant (timeout / cancel /
  /// shutdown) resolves the deferred ticket. `work_units` (> 0 for
  /// kAuto decisions) feeds the route calibrator on successful
  /// completion.
  AdmissionController::GrantFn MakeDeferredGrant(
      StarEntry* entry, std::shared_ptr<DeferredQuery> deferred,
      StarQuerySpec spec, AggregatorFactory aggregator,
      std::string tenant, int64_t deadline_ns, double work_units);

  /// Builds and starts a shard set + operator pool for `star`.
  Result<std::shared_ptr<ExecPool>> MakePool(const StarSchema& star,
                                             size_t shards,
                                             uint64_t disk_reader_base);

  /// Resolves a request's spec (parsing SQL if needed), normalizes it,
  /// and defaults its snapshot; returns the owning star entry.
  Result<StarEntry*> ResolveRequest(QueryRequest* request);

  /// The watchdog's sampler: stage progress/backlog per shard pipeline,
  /// inter-stage queue depths, and the admission wait queue. Runs on the
  /// watchdog thread against the same stats accessors the shell uses.
  void SampleForWatchdog(std::vector<obs::Watchdog::StageSample>& stages,
                         std::vector<obs::Watchdog::QueueSample>& queues);

  /// Submits a normalized spec to the star's CJOIN pool with exact
  /// snapshot capping under concurrent appends.
  Result<std::unique_ptr<QueryHandle>> SubmitToCJoin(
      StarEntry* entry, const std::shared_ptr<ExecPool>& pool,
      StarQuerySpec spec, CJoinOperator::SubmitOptions options);

  Options opts_;
  /// The router feedback loop: fed by the completion observers of every
  /// kAuto-routed query, consulted (lock-free) by router_. Declared
  /// before router_, which holds a pointer to it.
  RouteCalibrator calibrator_;
  Router router_;
  /// shared_ptr so a wait-queued ticket's waiter-cancel hook can hold a
  /// weak reference: such tickets may outlive the engine, and their
  /// Cancel() must degrade to a no-op rather than touch a freed
  /// controller.
  std::shared_ptr<AdmissionController> admission_;
  std::unique_ptr<BaselinePool> baseline_pool_;
  /// Slow-query capture: the threshold is read lock-free on every
  /// completion; the log's own mutex is touched only on capture.
  std::atomic<int64_t> slow_threshold_ns_{0};
  obs::SlowQueryLog slow_log_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  /// Guards the stars_ vector structure and each entry's pool pointer.
  mutable SharedMutex ops_mu_;
  std::vector<std::unique_ptr<StarEntry>> stars_ GUARDED_BY(ops_mu_);
  std::atomic<SnapshotId> snapshot_{1};
  Mutex update_mu_;  // serializes writers (single-writer storage)
  /// Set under update_mu_ (so SetShardCount, which holds update_mu_ for
  /// its whole body, cannot start a fresh pool after Shutdown swept the
  /// existing ones); read lock-free on the query paths.
  std::atomic<bool> shut_down_{false};
  /// Set by Shutdown(drain_timeout): Execute() sheds new submissions
  /// with kAborted immediate tickets while in-flight work drains.
  std::atomic<bool> draining_{false};
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_QUERY_ENGINE_H_
