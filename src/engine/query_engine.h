// QueryEngine: the system facade around the CJOIN operator.
//
// Owns the galaxy of star schemas, one always-on CJoinOperator per fact
// table, the snapshot counter for snapshot-isolated updates (§3.5), and
// the conventional (query-at-a-time) executor used when a query is
// explicitly routed to the baseline — "CJOIN becomes yet one more choice
// for the database query optimizer" (§3.2.3).
//
// Mirrors the architecture of §2.1's problem statement: concurrent star
// queries are diverted to the specialized CJOIN processor; updates and
// baseline executions are handled by conventional code paths.

#ifndef CJOIN_ENGINE_QUERY_ENGINE_H_
#define CJOIN_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/qat_engine.h"
#include "catalog/star_schema.h"
#include "cjoin/cjoin_operator.h"
#include "engine/sql_parser.h"

namespace cjoin {

class QueryEngine {
 public:
  struct Options {
    CJoinOperator::Options cjoin;
    QatOptions baseline;
  };

  explicit QueryEngine(Options options);
  QueryEngine() : QueryEngine(Options{}) {}
  ~QueryEngine();

  /// Registers a star schema under `name` and starts its CJOIN operator.
  Status RegisterStar(std::string name, StarSchema star);

  Result<const StarSchema*> FindStar(std::string_view name) const;

  // --- Query paths ---------------------------------------------------------

  /// Submits a star query to the CJOIN operator of its star. The spec's
  /// snapshot defaults to the engine's current snapshot.
  Result<std::unique_ptr<QueryHandle>> Submit(StarQuerySpec spec);

  /// Parses SQL against the named star and submits it.
  Result<std::unique_ptr<QueryHandle>> SubmitSql(std::string_view star_name,
                                                 std::string_view sql);

  /// Evaluates a star query with the conventional one-plan-per-query
  /// executor (blocking).
  Result<ResultSet> ExecuteBaseline(StarQuerySpec spec);

  /// Parses and evaluates SQL on the baseline path (blocking).
  Result<ResultSet> ExecuteBaselineSql(std::string_view star_name,
                                       std::string_view sql);

  // --- Galaxy queries (§5) ---------------------------------------------------

  /// A fact-to-fact join query over two stars, expressed as two star
  /// sub-queries pivoted on one fact column from each side.
  struct GalaxyJoinSpec {
    StarQuerySpec left;
    StarQuerySpec right;
    /// Fact-table columns equated by the fact-to-fact join.
    size_t left_join_col = 0;
    size_t right_join_col = 0;

    /// Output column: side 0 = left star, 1 = right star.
    struct OutputColumn {
      int side = 0;
      ColumnSource source;
      std::string label;
    };
    std::vector<OutputColumn> group_by;
    struct OutputAggregate {
      AggFn fn = AggFn::kCount;
      int side = 0;
      std::optional<ColumnSource> input;  // nullopt = COUNT(*)
      std::string label;
    };
    std::vector<OutputAggregate> aggregates;
  };

  /// Evaluates a galaxy join: both star sub-queries run concurrently in
  /// their stars' CJOIN operators (sharing work with any other in-flight
  /// queries); their result streams meet in a hash join, then aggregate.
  Result<ResultSet> ExecuteGalaxyJoin(const GalaxyJoinSpec& spec);

  // --- Updates (§3.5) --------------------------------------------------------

  /// Current snapshot id; queries submitted without an explicit snapshot
  /// read this snapshot.
  SnapshotId CurrentSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Appends fact rows (payload vectors of the fact schema's row size) to
  /// the named star's fact table as one transaction; returns the snapshot
  /// at which they became visible. New rows are observed by the
  /// continuous scan from its next lap (storage freezes sizes per lap).
  Result<SnapshotId> AppendFacts(std::string_view star_name,
                                 const std::vector<std::vector<uint8_t>>& rows,
                                 uint32_t partition = 0);

  /// Deletes fact rows matching `predicate` (over the fact schema) as one
  /// transaction; returns the first snapshot that no longer sees them.
  Result<SnapshotId> DeleteFacts(std::string_view star_name,
                                 const ExprPtr& predicate);

  /// The CJOIN operator of a registered star (for stats and tests).
  Result<CJoinOperator*> OperatorFor(std::string_view star_name);

  void Shutdown();

 private:
  struct StarEntry {
    std::string name;
    std::unique_ptr<StarSchema> star;
    std::unique_ptr<CJoinOperator> op;
    /// Snapshot of the newest committed append to this star's fact table.
    /// Queries are snapshot-capped only while appends beyond the scan's
    /// covered bound exist (deletes are always within scanned ranges).
    std::atomic<SnapshotId> last_append_snapshot{0};
  };

  Result<StarEntry*> EntryFor(const StarSchema* schema);
  Result<StarEntry*> EntryByName(std::string_view name);

  Options opts_;
  std::vector<std::unique_ptr<StarEntry>> stars_;
  std::atomic<SnapshotId> snapshot_{1};
  std::mutex update_mu_;  // serializes writers (single-writer storage)
  bool shut_down_ = false;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_QUERY_ENGINE_H_
