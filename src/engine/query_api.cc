#include "engine/query_api.h"

namespace cjoin {

QueryTicket::QueryTicket(RouteDecision decision,
                         std::unique_ptr<QueryHandle> handle)
    : decision_(std::move(decision)), cjoin_(std::move(handle)) {}

QueryTicket::QueryTicket(RouteDecision decision,
                         std::shared_ptr<BaselineJob> job,
                         std::future<Result<ResultSet>> future)
    : decision_(std::move(decision)),
      baseline_(std::move(job)),
      baseline_future_(std::move(future)) {}

QueryTicket::~QueryTicket() = default;

const std::string& QueryTicket::label() const {
  return cjoin_ != nullptr ? cjoin_->label() : baseline_->spec.label;
}

SnapshotId QueryTicket::snapshot() const {
  return cjoin_ != nullptr ? cjoin_->snapshot() : baseline_->spec.snapshot;
}

Result<ResultSet> QueryTicket::Wait() {
  if (cjoin_ != nullptr) return cjoin_->Wait();
  return baseline_future_.get();
}

bool QueryTicket::Ready() const {
  if (cjoin_ != nullptr) return cjoin_->Ready();
  return baseline_future_.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

void QueryTicket::Cancel() {
  if (cjoin_ != nullptr) {
    cjoin_->Cancel();
  } else {
    baseline_->cancel.store(true, std::memory_order_release);
  }
}

double QueryTicket::ResponseSeconds() const {
  if (cjoin_ != nullptr) return cjoin_->ResponseSeconds();
  const int64_t done = baseline_->completed_ns.load();
  const int64_t sub = baseline_->submit_ns.load();
  return done > sub ? static_cast<double>(done - sub) * 1e-9 : 0.0;
}

double QueryTicket::SubmissionSeconds() const {
  return cjoin_ != nullptr ? cjoin_->SubmissionSeconds() : 0.0;
}

uint32_t QueryTicket::query_id() const {
  return cjoin_ != nullptr ? cjoin_->query_id() : UINT32_MAX;
}

}  // namespace cjoin
