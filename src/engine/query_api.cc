#include "engine/query_api.h"

namespace cjoin {

QueryTicket::QueryTicket(RouteDecision decision,
                         std::unique_ptr<QueryHandle> handle)
    : decision_(std::move(decision)), cjoin_(std::move(handle)) {}

QueryTicket::QueryTicket(RouteDecision decision,
                         std::shared_ptr<BaselineJob> job,
                         std::future<Result<ResultSet>> future)
    : decision_(std::move(decision)),
      baseline_(std::move(job)),
      baseline_future_(std::move(future)) {}

QueryTicket::QueryTicket(RouteDecision decision, std::string label,
                         SnapshotId snapshot, Result<ResultSet> immediate)
    : decision_(std::move(decision)),
      immediate_(std::move(immediate)),
      label_(std::move(label)),
      snapshot_(snapshot) {}

QueryTicket::QueryTicket(RouteDecision decision,
                         std::shared_ptr<DeferredQuery> deferred,
                         std::future<Result<ResultSet>> future)
    : decision_(std::move(decision)),
      baseline_future_(std::move(future)),
      deferred_(std::move(deferred)) {}

QueryTicket::~QueryTicket() = default;

const std::string& QueryTicket::label() const {
  if (cjoin_ != nullptr) return cjoin_->label();
  if (baseline_ != nullptr) return baseline_->spec.label;
  if (deferred_ != nullptr) return deferred_->label;
  return label_;
}

SnapshotId QueryTicket::snapshot() const {
  if (cjoin_ != nullptr) return cjoin_->snapshot();
  if (baseline_ != nullptr) return baseline_->spec.snapshot;
  if (deferred_ != nullptr) return deferred_->snapshot;
  return snapshot_;
}

Result<ResultSet> QueryTicket::Wait() {
  if (cjoin_ != nullptr) return cjoin_->Wait();
  if (immediate_.has_value()) return std::move(*immediate_);
  return baseline_future_.get();
}

bool QueryTicket::Ready() const {
  if (cjoin_ != nullptr) return cjoin_->Ready();
  if (immediate_.has_value()) return true;
  return baseline_future_.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

void QueryTicket::Cancel() {
  if (cjoin_ != nullptr) {
    cjoin_->Cancel();
    return;
  }
  if (baseline_ != nullptr) {
    baseline_->cancel.store(true, std::memory_order_release);
    return;
  }
  if (deferred_ != nullptr) {
    // Invoke the underlying cancel path outside the state lock: the
    // waiter-cancel calls back into the admission controller, whose
    // grant path takes this lock.
    QueryHandle* handle = nullptr;
    std::function<void()> cancel_waiter;
    {
      MutexLock lk(&deferred_->mu);
      deferred_->cancelled = true;
      if (deferred_->handle != nullptr) {
        handle = deferred_->handle.get();
      } else {
        cancel_waiter = deferred_->cancel_waiter;
      }
    }
    if (handle != nullptr) {
      handle->Cancel();
    } else if (cancel_waiter) {
      cancel_waiter();
    }
  }
  // Immediate tickets are already terminal: Cancel is a no-op.
}

double QueryTicket::ResponseSeconds() const {
  if (cjoin_ != nullptr) return cjoin_->ResponseSeconds();
  if (immediate_.has_value()) return 0.0;
  const BaselineJob* job = baseline_.get();
  int64_t done = 0, sub = 0;
  if (job != nullptr) {
    done = job->completed_ns.load();
    sub = job->submit_ns.load();
  } else if (deferred_ != nullptr) {
    done = deferred_->completed_ns.load();
    sub = deferred_->submit_ns.load();
  }
  return done > sub ? static_cast<double>(done - sub) * 1e-9 : 0.0;
}

double QueryTicket::SubmissionSeconds() const {
  return cjoin_ != nullptr ? cjoin_->SubmissionSeconds() : 0.0;
}

uint32_t QueryTicket::query_id() const {
  if (cjoin_ != nullptr) return cjoin_->query_id();
  if (deferred_ != nullptr) {
    MutexLock lk(&deferred_->mu);
    if (deferred_->handle != nullptr) return deferred_->handle->query_id();
  }
  return UINT32_MAX;
}

}  // namespace cjoin
