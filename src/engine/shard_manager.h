// ShardManager: hash-partitioned fact-table shards for parallel CJOIN
// pipelines.
//
// A single CJOIN operator is bounded by one continuous scan's fact-tuple
// rate (paper §3.1/§6.2.3). To scale past that, the ShardManager splits a
// star's fact table into N shards — in the spirit of partitioned,
// independently-scanned analytics replicas (Polynesia, PAPERS.md) — and
// wires each shard into its own StarSchema over the *shared* dimension
// tables. The ShardedCJoinOperator then drives one full pipeline instance
// (scan, preprocessor, filters, distributor) per shard.
//
// Placement is by hash of the fact row payload: deterministic, key-free
// (works for any fact schema), and balanced. Every fact row lives in
// exactly one shard, so per-shard partial aggregates merge into exactly
// the single-operator answer.
//
// With num_shards == 1 the manager is a pass-through: shard 0 *is* the
// source star and no bytes are copied. With N > 1 the shards are replicas
// carved out of the source table at build time (MVCC headers preserved,
// so old snapshots stay exact); the engine then mirrors every committed
// append/delete into the shard replicas under its update lock, keeping the
// source table (used by the baseline executor and the router's cost
// model) and the shard set transactionally in step.

#ifndef CJOIN_ENGINE_SHARD_MANAGER_H_
#define CJOIN_ENGINE_SHARD_MANAGER_H_

#include <memory>
#include <vector>

#include "catalog/star_schema.h"
#include "common/status.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace cjoin {

class ShardManager {
 public:
  /// Builds the shard set for `source`. num_shards == 1 is the
  /// pass-through configuration; N > 1 hash-partitions the current
  /// contents of source.fact() into N replica tables (same schema, same
  /// partition layout, xmin/xmax copied).
  static Result<std::unique_ptr<ShardManager>> Make(const StarSchema& source,
                                                    size_t num_shards);

  size_t num_shards() const { return stars_.size(); }
  const StarSchema& source() const { return *source_; }
  const StarSchema& shard_star(size_t s) const { return stars_[s]; }
  /// The shard stars in index order (for the ShardedCJoinOperator).
  std::vector<const StarSchema*> shard_stars() const;

  /// True when shards are physical replicas (N > 1) that must be kept in
  /// step with the source table by Mirror*().
  bool replicated() const { return !replicas_.empty(); }

  /// Deterministic shard of a fact row payload (hash of its bytes).
  size_t ShardOfRow(const uint8_t* payload) const;

  /// Mirrors one committed append into the owning shard replica. The
  /// caller (the engine) holds its update lock and has already appended
  /// the row to the source table at snapshot `xmin`. No-op when
  /// pass-through.
  void MirrorAppend(const uint8_t* payload, uint32_t partition,
                    SnapshotId xmin);

  /// Mirrors a committed predicate delete: marks every visible matching
  /// row in every shard replica deleted as of `xmax`, exactly as the
  /// engine did on the source table. No-op when pass-through.
  Status MirrorDelete(const Expr& predicate, SnapshotId xmax);

  /// Total rows across shards (== source fact rows; for diagnostics).
  uint64_t TotalShardRows() const;

 private:
  ShardManager() = default;

  const StarSchema* source_ = nullptr;
  /// Physical shard fact tables; empty in the pass-through configuration.
  std::vector<std::unique_ptr<Table>> replicas_;
  /// One star per shard, over the shared dimension tables. In the
  /// pass-through configuration this is a copy of the source star.
  std::vector<StarSchema> stars_;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_SHARD_MANAGER_H_
