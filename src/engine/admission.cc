#include "engine/admission.h"

#include <algorithm>
#include <chrono>

#include "cjoin/query_runtime.h"
#include "obs/flight_recorder.h"

namespace cjoin {

namespace {

/// One flight-recorder instant per gate verdict, labelled by tenant.
void RecordVerdict(AdmissionOutcome outcome, const std::string& tenant) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      obs::RecordEvent(obs::EventKind::kAdmitGrant, tenant.c_str());
      break;
    case AdmissionOutcome::kQueued:
      obs::RecordEvent(obs::EventKind::kAdmitQueue, tenant.c_str());
      break;
    case AdmissionOutcome::kShed:
      obs::RecordEvent(obs::EventKind::kAdmitShed, tenant.c_str());
      break;
  }
}

}  // namespace

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kQueued:
      return "queued";
    case AdmissionOutcome::kShed:
      return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(Options options)
    : opts_(std::move(options)) {
  if (opts_.default_quota.weight <= 0.0) opts_.default_quota.weight = 1.0;
  auto& reg = obs::MetricsRegistry::Global();
  const char* kDecisionsHelp = "Admission gate verdicts by outcome";
  obs_admitted_ = reg.GetCounter("admission_decisions_total", kDecisionsHelp,
                                 obs::LabelPair("outcome", "admitted"));
  obs_queued_ = reg.GetCounter("admission_decisions_total", kDecisionsHelp,
                               obs::LabelPair("outcome", "queued"));
  obs_shed_ = reg.GetCounter("admission_decisions_total", kDecisionsHelp,
                             obs::LabelPair("outcome", "shed"));
  obs_released_ = reg.GetCounter("admission_released_total",
                                 "Quota slots returned by terminal queries");
  obs_wait_depth_ = reg.GetGauge("admission_wait_queue_depth",
                                 "Submissions parked for a CJOIN slot");
  service_thread_ = std::thread([this] { ServiceLoop(); });
}

AdmissionController::~AdmissionController() { Shutdown(); }

void AdmissionController::Shutdown() {
  std::vector<GrantAction> failed;
  {
    MutexLock lk(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (Waiter& w : wait_queue_) {
      tenants_[w.tenant].waiting--;
      GrantAction action;
      action.grant = std::move(w.grant);
      action.status = Status::Aborted("admission controller shut down");
      failed.push_back(std::move(action));
    }
    wait_queue_.clear();
    obs_wait_depth_->Set(0);
  }
  service_cv_.NotifyAll();
  for (GrantAction& a : failed) a.grant(a.status);
  if (service_thread_.joinable()) service_thread_.join();
}

/// Idle implicit tenant states are pruned once the map exceeds this many
/// entries (hostile clients can mint unique tenant strings per request).
constexpr size_t kMaxIdleTenantStates = 1024;

void AdmissionController::PruneIdleTenantsLocked() {
  if (tenants_.size() <= kMaxIdleTenantStates) return;
  for (auto it = tenants_.begin(); it != tenants_.end();) {
    const TenantState& s = it->second;
    if (!s.explicit_quota && s.inflight_cjoin == 0 &&
        s.baseline_in_system == 0 && s.waiting == 0) {
      it = tenants_.erase(it);
    } else {
      ++it;
    }
  }
}

AdmissionController::TenantState& AdmissionController::StateFor(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    PruneIdleTenantsLocked();
    TenantState fresh;
    fresh.quota = opts_.default_quota;
    fresh.last_refill_ns = QueryRuntime::NowNs();
    fresh.tokens = fresh.quota.burst > 0.0
                       ? fresh.quota.burst
                       : std::max(fresh.quota.rate_per_sec, 1.0);
    it = tenants_.emplace(tenant, std::move(fresh)).first;
  }
  return it->second;
}

bool AdmissionController::RefillAndCheck(TenantState& state,
                                         int64_t now_ns) {
  const TenantQuota& q = state.quota;
  if (q.rate_per_sec <= 0.0) return true;
  const double cap = q.burst > 0.0 ? q.burst : std::max(q.rate_per_sec, 1.0);
  const double elapsed =
      static_cast<double>(now_ns - state.last_refill_ns) * 1e-9;
  if (elapsed > 0.0) {
    state.tokens = std::min(cap, state.tokens + elapsed * q.rate_per_sec);
    state.last_refill_ns = now_ns;
  }
  return state.tokens >= 1.0;
}

bool AdmissionController::CJoinSlotAvailableLocked(
    const TenantState& state) const {
  if (opts_.max_total_cjoin != 0 && total_cjoin_ >= opts_.max_total_cjoin) {
    return false;
  }
  const size_t cap = state.quota.max_inflight_cjoin;
  return cap == 0 || state.inflight_cjoin < cap;
}

AdmissionDecision AdmissionController::TryAdmit(const std::string& tenant,
                                                RouteChoice route,
                                                int64_t deadline_ns,
                                                GrantFactory make_grant) {
  const int64_t now = QueryRuntime::NowNs();
  AdmissionDecision d;
  MutexLock lk(&mu_);
  if (shutdown_) {
    obs_shed_->Add();
    d.outcome = AdmissionOutcome::kShed;
    d.status = Status::FailedPrecondition("engine shut down");
    d.reason = "engine shut down";
    RecordVerdict(d.outcome, tenant);
    return d;
  }
  TenantState& state = StateFor(tenant);

  if (!RefillAndCheck(state, now)) {
    state.shed++;
    obs_shed_->Add();
    d.outcome = AdmissionOutcome::kShed;
    d.reason = "tenant rate limit";
    d.status = Status::ResourceExhausted(
        "tenant '" + tenant + "' over its admission rate (" +
        std::to_string(state.quota.rate_per_sec) + "/s)");
    RecordVerdict(d.outcome, tenant);
    return d;
  }

  if (route == RouteChoice::kBaseline) {
    if (opts_.max_total_baseline != 0 &&
        total_baseline_ >= opts_.max_total_baseline) {
      state.shed++;
      obs_shed_->Add();
      d.outcome = AdmissionOutcome::kShed;
      d.reason = "engine baseline queue full";
      d.status = Status::ResourceExhausted(
          "engine-wide baseline queue limit (" +
          std::to_string(opts_.max_total_baseline) + ") reached");
      RecordVerdict(d.outcome, tenant);
      return d;
    }
    const size_t cap = state.quota.max_queued_baseline;
    if (cap != 0 && state.baseline_in_system >= cap) {
      state.shed++;
      obs_shed_->Add();
      d.outcome = AdmissionOutcome::kShed;
      d.reason = "tenant baseline queue full";
      d.status = Status::ResourceExhausted(
          "tenant '" + tenant + "' already has " +
          std::to_string(state.baseline_in_system) +
          " baseline jobs in the system (limit " + std::to_string(cap) +
          ")");
      RecordVerdict(d.outcome, tenant);
      return d;
    }
    if (state.quota.rate_per_sec > 0.0) state.tokens -= 1.0;
    state.baseline_in_system++;
    total_baseline_++;
    state.admitted++;
    obs_admitted_->Add();
    d.outcome = AdmissionOutcome::kAdmitted;
    d.reason = "within quota";
    RecordVerdict(d.outcome, tenant);
    return d;
  }

  // CJOIN route.
  if (CJoinSlotAvailableLocked(state)) {
    if (state.quota.rate_per_sec > 0.0) state.tokens -= 1.0;
    state.inflight_cjoin++;
    total_cjoin_++;
    state.admitted++;
    obs_admitted_->Add();
    d.outcome = AdmissionOutcome::kAdmitted;
    d.reason = "within quota";
    RecordVerdict(d.outcome, tenant);
    return d;
  }

  const bool total_full =
      opts_.max_total_cjoin != 0 && total_cjoin_ >= opts_.max_total_cjoin;
  const char* bound =
      total_full ? "engine CJOIN registrations" : "tenant CJOIN slots";

  if (make_grant != nullptr && state.quota.max_wait_queue != 0 &&
      state.waiting < state.quota.max_wait_queue) {
    Waiter w;
    w.id = next_waiter_id_++;
    w.tenant = tenant;
    if (deadline_ns != 0) {
      w.expire_ns = deadline_ns;
      w.expire_is_deadline = true;
    }
    if (state.quota.max_wait_ns > 0) {
      const int64_t wait_limit = now + state.quota.max_wait_ns;
      if (w.expire_ns == 0 || wait_limit < w.expire_ns) {
        w.expire_ns = wait_limit;
        w.expire_is_deadline = false;
      }
    }
    w.grant = make_grant();
    if (state.quota.rate_per_sec > 0.0) state.tokens -= 1.0;
    state.waiting++;
    state.queued++;
    obs_queued_->Add();
    wait_queue_.push_back(std::move(w));
    waiters_epoch_++;
    obs_wait_depth_->Set(static_cast<int64_t>(wait_queue_.size()));
    d.outcome = AdmissionOutcome::kQueued;
    d.reason = std::string(bound) + " full: parked in wait queue";
    d.waiter_id = wait_queue_.back().id;
    service_cv_.NotifyAll();  // re-arm the expiry timer
    RecordVerdict(d.outcome, tenant);
    return d;
  }

  state.shed++;
  obs_shed_->Add();
  d.outcome = AdmissionOutcome::kShed;
  d.reason = bound;
  d.status = Status::ResourceExhausted(
      total_full
          ? "engine-wide CJOIN registration limit (" +
                std::to_string(opts_.max_total_cjoin) + ") reached"
          : "tenant '" + tenant + "' already holds " +
                std::to_string(state.inflight_cjoin) +
                " CJOIN slots (limit " +
                std::to_string(state.quota.max_inflight_cjoin) + ")");
  RecordVerdict(d.outcome, tenant);
  return d;
}

AdmissionDecision AdmissionController::Probe(const std::string& tenant,
                                             RouteChoice route) const {
  MutexLock lk(&mu_);
  return ProbeLocked(tenant, route, QueryRuntime::NowNs());
}

AdmissionDecision AdmissionController::ProbeLocked(const std::string& tenant,
                                                   RouteChoice route,
                                                   int64_t now) const {
  AdmissionDecision d;
  auto it = tenants_.find(tenant);
  // Unknown tenant: judged against the default quota with a full bucket.
  TenantState scratch;
  scratch.quota = opts_.default_quota;
  scratch.tokens = scratch.quota.burst > 0.0
                       ? scratch.quota.burst
                       : std::max(scratch.quota.rate_per_sec, 1.0);
  scratch.last_refill_ns = now;
  TenantState state = it == tenants_.end() ? scratch : it->second;

  if (!RefillAndCheck(state, now)) {
    d.outcome = AdmissionOutcome::kShed;
    d.reason = "tenant rate limit";
    d.status = Status::ResourceExhausted("tenant over its admission rate");
    return d;
  }
  if (route == RouteChoice::kBaseline) {
    const size_t cap = state.quota.max_queued_baseline;
    const bool total_full = opts_.max_total_baseline != 0 &&
                            total_baseline_ >= opts_.max_total_baseline;
    if (total_full || (cap != 0 && state.baseline_in_system >= cap)) {
      d.outcome = AdmissionOutcome::kShed;
      d.reason = total_full ? "engine baseline queue full"
                            : "tenant baseline queue full";
      d.status = Status::ResourceExhausted("baseline queue limit reached");
      return d;
    }
    d.outcome = AdmissionOutcome::kAdmitted;
    d.reason = "within quota";
    return d;
  }
  if (CJoinSlotAvailableLocked(state)) {
    d.outcome = AdmissionOutcome::kAdmitted;
    d.reason = "within quota";
    return d;
  }
  const bool total_full =
      opts_.max_total_cjoin != 0 && total_cjoin_ >= opts_.max_total_cjoin;
  const char* bound =
      total_full ? "engine CJOIN registrations" : "tenant CJOIN slots";
  if (state.quota.max_wait_queue != 0 &&
      state.waiting < state.quota.max_wait_queue) {
    d.outcome = AdmissionOutcome::kQueued;
    d.reason = std::string(bound) + " full: would park in wait queue";
    return d;
  }
  d.outcome = AdmissionOutcome::kShed;
  d.reason = bound;
  d.status = Status::ResourceExhausted("CJOIN slot limit reached");
  return d;
}

void AdmissionController::CollectGrantsLocked(
    int64_t now_ns, std::vector<GrantAction>* out) {
  for (auto it = wait_queue_.begin(); it != wait_queue_.end();) {
    TenantState& state = tenants_[it->tenant];
    if (it->expire_ns != 0 && now_ns >= it->expire_ns) {
      state.waiting--;
      state.shed++;
      obs_shed_->Add();
      RecordVerdict(AdmissionOutcome::kShed, it->tenant);
      GrantAction action;
      action.grant = std::move(it->grant);
      action.status =
          it->expire_is_deadline
              ? Status::DeadlineExceeded(
                    "query deadline expired in the admission wait queue")
              : Status::ResourceExhausted(
                    "admission wait queue timeout for tenant '" +
                    it->tenant + "'");
      out->push_back(std::move(action));
      it = wait_queue_.erase(it);
      continue;
    }
    if (CJoinSlotAvailableLocked(state)) {
      state.waiting--;
      state.inflight_cjoin++;
      total_cjoin_++;
      state.admitted++;
      obs_admitted_->Add();
      RecordVerdict(AdmissionOutcome::kAdmitted, it->tenant);
      GrantAction action;
      action.grant = std::move(it->grant);
      action.status = Status::OK();
      action.tenant = it->tenant;
      action.expire_ns = it->expire_ns;
      action.expire_is_deadline = it->expire_is_deadline;
      action.slot_consumed = true;
      out->push_back(std::move(action));
      it = wait_queue_.erase(it);
      continue;
    }
    ++it;
  }
  obs_wait_depth_->Set(static_cast<int64_t>(wait_queue_.size()));
}

void AdmissionController::Release(const std::string& tenant,
                                  RouteChoice route) {
  bool notify = false;
  {
    MutexLock lk(&mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return;
    TenantState& state = it->second;
    if (route == RouteChoice::kBaseline) {
      if (state.baseline_in_system > 0) {
        state.baseline_in_system--;
        total_baseline_--;
        state.released++;
        obs_released_->Add();
      }
      return;
    }
    if (state.inflight_cjoin > 0) {
      state.inflight_cjoin--;
      total_cjoin_--;
      state.released++;
      obs_released_->Add();
    }
    // Hand grants to the service thread. Release often runs on a
    // pipeline thread mid-delivery — before that thread has recycled the
    // completed query's id — so an inline grant would re-submit into a
    // freelist only this very thread can refill and stall on itself.
    if (!wait_queue_.empty()) {
      grants_pending_ = true;
      notify = true;
    }
  }
  if (notify) service_cv_.NotifyAll();
}

void AdmissionController::ReleaseAsShed(const std::string& tenant,
                                        RouteChoice route) {
  Release(tenant, route);
  MutexLock lk(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  // Rewrite the admitted+released round trip into the shed the caller
  // actually experienced.
  TenantState& state = it->second;
  if (state.admitted > 0) state.admitted--;
  if (state.released > 0) state.released--;
  state.shed++;
  // The registry's counters stay monotonic (Prometheus semantics): the
  // admitted+released round trip is not rewound there, only the shed is
  // recorded on top.
  obs_shed_->Add();
}

void AdmissionController::CancelWaiter(uint64_t waiter_id) {
  GrantFn grant;
  {
    MutexLock lk(&mu_);
    for (auto it = wait_queue_.begin(); it != wait_queue_.end(); ++it) {
      if (it->id == waiter_id) {
        tenants_[it->tenant].waiting--;
        grant = std::move(it->grant);
        wait_queue_.erase(it);
        obs_wait_depth_->Set(static_cast<int64_t>(wait_queue_.size()));
        break;
      }
    }
  }
  if (grant) {
    grant(Status::Cancelled("query cancelled in the admission wait queue"));
  }
}

void AdmissionController::ServiceLoop() {
  obs::RegisterThread("adm");
  UniqueLock lk(&mu_);
  while (!shutdown_) {
    if (!grants_pending_) {
      int64_t nearest = 0;
      for (const Waiter& w : wait_queue_) {
        if (w.expire_ns != 0 && (nearest == 0 || w.expire_ns < nearest)) {
          nearest = w.expire_ns;
        }
      }
      // Wake on shutdown, pending grants, or ANY wait-queue change — a
      // newly parked waiter may expire earlier than `nearest`, so the
      // timer must be re-armed, not slept through. Explicit wait loops
      // (not the predicate overload): a predicate lambda is analyzed as
      // a separate, unlocked function, so the guarded reads live here.
      const uint64_t epoch = waiters_epoch_;
      if (nearest == 0) {
        while (!shutdown_ && !grants_pending_ && waiters_epoch_ == epoch) {
          service_cv_.Wait(mu_);
        }
        continue;  // recompute the nearest expiry (or drain grants)
      }
      const int64_t now = QueryRuntime::NowNs();
      if (nearest > now) {
        const auto wake_at = std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(nearest - now);
        bool timed_out = false;
        while (!shutdown_ && !grants_pending_ && waiters_epoch_ == epoch) {
          if (service_cv_.WaitUntil(mu_, wake_at) ==
              std::cv_status::timeout) {
            timed_out = true;
            break;
          }
        }
        if (!timed_out && waiters_epoch_ != epoch && !grants_pending_ &&
            !shutdown_) {
          continue;  // woken only to re-arm: nothing due yet
        }
      }
    }
    if (shutdown_) break;
    grants_pending_ = false;
    // One pass covers both wakeup causes: grant whatever freed budget
    // allows, expire whatever ran out of time.
    std::vector<GrantAction> actions;
    CollectGrantsLocked(QueryRuntime::NowNs(), &actions);
    if (!actions.empty()) {
      lk.Unlock();
      // OK grants perform the deferred pipeline submission here, on the
      // service thread — never on a Release() caller.
      for (GrantAction& a : actions) {
        // An earlier grant in this batch may have run long (it submits
        // into the pipeline); re-check the waiter's deadline at *grant*
        // time. A slot consumed for an already-expired query would be
        // briefly held until the pipeline's deadline fan-out reclaimed
        // it — return it here instead and fail the grant directly.
        if (a.slot_consumed && a.expire_is_deadline && a.expire_ns != 0 &&
            QueryRuntime::NowNs() >= a.expire_ns) {
          // Return the slot and rewrite the admitted round trip into
          // the shed the caller experienced; Release (inside) also
          // flags grants_pending_ so the freed slot can serve the next
          // parked waiter. We run off the lock here, so the re-lock
          // inside is safe.
          ReleaseAsShed(a.tenant, RouteChoice::kCJoin);
          a.grant(Status::DeadlineExceeded(
              "query deadline expired before its admission grant ran"));
          continue;
        }
        a.grant(a.status);
      }
      lk.Lock();
    }
  }
}

Status AdmissionController::SetTenantQuota(const std::string& tenant,
                                           TenantQuota quota) {
  if (quota.weight <= 0.0) {
    return Status::InvalidArgument("tenant weight must be > 0");
  }
  if (quota.rate_per_sec < 0.0 || quota.burst < 0.0 ||
      quota.max_wait_ns < 0) {
    return Status::InvalidArgument("tenant quota values must be >= 0");
  }
  {
    MutexLock lk(&mu_);
    TenantState& state = StateFor(tenant);
    state.quota = quota;
    state.explicit_quota = true;
    // Refill under the new rate from now, with a full bucket so a
    // rebalanced tenant is immediately serviceable.
    state.last_refill_ns = QueryRuntime::NowNs();
    state.tokens =
        quota.burst > 0.0 ? quota.burst : std::max(quota.rate_per_sec, 1.0);
    // A raised slot budget may unblock parked waiters; the service
    // thread delivers those grants.
    if (!wait_queue_.empty()) grants_pending_ = true;
  }
  service_cv_.NotifyAll();
  return Status::OK();
}

TenantQuota AdmissionController::GetTenantQuota(
    const std::string& tenant) const {
  MutexLock lk(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? opts_.default_quota : it->second.quota;
}

double AdmissionController::PoolShare(const std::string& tenant) const {
  MutexLock lk(&mu_);
  return PoolShareLocked(tenant);
}

double AdmissionController::PoolShareLocked(const std::string& tenant) const {
  double own = opts_.default_quota.weight;
  double total = 0.0;
  bool counted_self = false;
  for (const auto& [name, state] : tenants_) {
    if (name == tenant) {
      own = state.quota.weight;
      total += own;
      counted_self = true;
    } else if (state.baseline_in_system > 0) {
      total += state.quota.weight;
    }
  }
  if (!counted_self) total += own;
  return total <= 0.0 ? 1.0 : own / total;
}

void AdmissionController::SampleForRouting(
    const std::string& tenant, RouteInputs* inputs,
    AdmissionDecision* probe_cjoin, AdmissionDecision* probe_baseline) const {
  MutexLock lk(&mu_);
  auto it = tenants_.find(tenant);
  const TenantQuota& q =
      it == tenants_.end() ? opts_.default_quota : it->second.quota;
  inputs->tenant_cjoin_slots = q.max_inflight_cjoin;
  if (opts_.max_total_cjoin != 0 &&
      (inputs->tenant_cjoin_slots == 0 ||
       opts_.max_total_cjoin < inputs->tenant_cjoin_slots)) {
    inputs->tenant_cjoin_slots = opts_.max_total_cjoin;
  }
  if (it != tenants_.end()) {
    inputs->tenant_inflight_cjoin = it->second.inflight_cjoin;
    inputs->tenant_baseline_queued = it->second.baseline_in_system;
  }
  inputs->tenant_pool_share = PoolShareLocked(tenant);
  const int64_t now = QueryRuntime::NowNs();
  // Both routes are always probed: the Router's exploration policy needs
  // the would-shed verdicts even when the caller has no use for the
  // full probe objects.
  const AdmissionDecision cjoin = ProbeLocked(tenant, RouteChoice::kCJoin, now);
  const AdmissionDecision baseline =
      ProbeLocked(tenant, RouteChoice::kBaseline, now);
  inputs->cjoin_would_shed = cjoin.outcome == AdmissionOutcome::kShed;
  inputs->baseline_would_shed = baseline.outcome == AdmissionOutcome::kShed;
  if (probe_cjoin != nullptr) *probe_cjoin = cjoin;
  if (probe_baseline != nullptr) *probe_baseline = baseline;
}

AdmissionController::Stats AdmissionController::GetStats() const {
  MutexLock lk(&mu_);
  Stats s;
  s.total_cjoin_inflight = total_cjoin_;
  s.total_baseline_in_system = total_baseline_;
  s.total_waiting = wait_queue_.size();
  for (const Waiter& w : wait_queue_) {
    if (w.expire_is_deadline && w.expire_ns != 0 &&
        (s.earliest_waiter_deadline_ns == 0 ||
         w.expire_ns < s.earliest_waiter_deadline_ns)) {
      s.earliest_waiter_deadline_ns = w.expire_ns;
    }
  }
  for (const auto& [name, state] : tenants_) {
    TenantStats ts;
    ts.tenant = name;
    ts.quota = state.quota;
    ts.inflight_cjoin = state.inflight_cjoin;
    ts.baseline_in_system = state.baseline_in_system;
    ts.waiting = state.waiting;
    ts.tokens = state.tokens;
    ts.admitted = state.admitted;
    ts.queued = state.queued;
    ts.shed = state.shed;
    ts.released = state.released;
    s.tenants.push_back(std::move(ts));
  }
  return s;
}

}  // namespace cjoin
