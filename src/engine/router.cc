#include "engine/router.h"

#include <algorithm>
#include <cstdio>

#include "engine/route_feedback.h"

namespace cjoin {

const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kAuto:
      return "auto";
    case RoutePolicy::kCJoin:
      return "cjoin";
    case RoutePolicy::kBaseline:
      return "baseline";
  }
  return "?";
}

const char* RouteChoiceName(RouteChoice choice) {
  switch (choice) {
    case RouteChoice::kCJoin:
      return "CJOIN";
    case RouteChoice::kBaseline:
      return "baseline";
  }
  return "?";
}

std::string RouteDecision::ToString() const {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "route: %s%s%s\n"
                "  selectivity     %.4f\n"
                "  fact rows       %llu\n"
                "  dim build rows  %llu\n"
                "  in-flight       %zu\n"
                "  shards          %zu\n"
                "  baseline queue  %zu\n",
                RouteChoiceName(choice), forced ? " (forced by policy)" : "",
                explored ? " (exploring for calibration)" : "", selectivity,
                static_cast<unsigned long long>(fact_rows),
                static_cast<unsigned long long>(dim_build_rows), inflight,
                shards, baseline_queued);
  std::string out = buf;
  if (calibrated) {
    std::snprintf(buf, sizeof(buf),
                  "  cost(cjoin)     static %.0f units | calibrated %.4f s\n"
                  "  cost(baseline)  static %.0f units | calibrated %.4f s\n",
                  static_cjoin_cost, cjoin_cost, static_baseline_cost,
                  baseline_cost);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "  cost(cjoin)     static %.0f units (calibration cold)\n"
                  "  cost(baseline)  static %.0f units (calibration cold)\n",
                  static_cjoin_cost, static_baseline_cost);
  }
  out += buf;
  std::snprintf(buf, sizeof(buf), "  reason          %s", reason.c_str());
  out += buf;
  if (!tenant.empty()) {
    char slots[32];
    if (tenant_cjoin_slots == 0) {
      std::snprintf(slots, sizeof(slots), "unlimited");
    } else {
      std::snprintf(slots, sizeof(slots), "%zu", tenant_cjoin_slots);
    }
    std::snprintf(buf, sizeof(buf),
                  "\n"
                  "  tenant          %s\n"
                  "  tenant slots    %zu/%s in flight\n"
                  "  pool share      %.2f\n"
                  "  admission       %s",
                  tenant.c_str(), tenant_inflight_cjoin, slots,
                  tenant_pool_share,
                  admission.empty() ? "-" : admission.c_str());
    out += buf;
  }
  return out;
}

double Router::EstimateSelectivity(const StarQuerySpec& spec,
                                   uint64_t* dim_build_rows) const {
  double combined = 1.0;
  uint64_t build_rows = 0;
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    const DimensionDef& def = spec.schema->dimension(dp.dim_index);
    const Table& dim = *def.table;
    const uint64_t total = dim.NumRows();
    if (total == 0) continue;
    const bool trivial =
        dp.predicate == nullptr || IsTrueLiteral(dp.predicate);
    // Evenly strided sample over each partition (dimensions are small
    // and memory-resident, so this is a handful of microseconds). The
    // stride is clamped to [1, total] so sub-sample-size dimensions —
    // including 1- and 2-row ones — are fully scanned rather than
    // skewed by integer-division stride edge cases. Every sampled
    // position is checked against the spec's snapshot: a fact row whose
    // FK points at a deleted (or not-yet-visible) dimension row does
    // not join, so invisible rows count against the pass fraction and
    // are excluded from the build-side estimate — even for trivial
    // predicates, which previously skipped sampling and priced
    // GC-heavy dimensions at their raw row count.
    const Schema& dschema = dim.schema();
    const uint64_t step = std::clamp<uint64_t>(
        total / std::max<size_t>(1, opts_.selectivity_sample_rows), 1,
        total);
    uint64_t scanned = 0, passed = 0;
    for (uint32_t p = 0; p < dim.num_partitions(); ++p) {
      const uint64_t n = dim.PartitionRows(p);
      for (uint64_t i = 0; i < n; i += step) {
        const RowId id{p, i};
        ++scanned;
        if (!dim.Header(id)->VisibleAt(spec.snapshot)) continue;
        if (trivial ||
            dp.predicate->EvalBool(dschema, dim.RowPayload(id))) {
          ++passed;
        }
      }
    }
    const double frac =
        scanned == 0
            ? 1.0
            : static_cast<double>(passed) / static_cast<double>(scanned);
    combined *= frac;
    build_rows += static_cast<uint64_t>(frac * static_cast<double>(total));
  }
  if (dim_build_rows != nullptr) *dim_build_rows = build_rows;
  return combined;
}

RouteDecision Router::Decide(const StarQuerySpec& spec,
                             const RouteInputs& inputs,
                             DecideMode mode) const {
  RouteDecision d;
  d.inflight = inputs.inflight;
  d.shards = std::max<size_t>(1, inputs.shards);
  d.baseline_queued = inputs.baseline_queued;
  d.tenant_inflight_cjoin = inputs.tenant_inflight_cjoin;
  d.tenant_cjoin_slots = inputs.tenant_cjoin_slots;
  d.tenant_pool_share =
      std::clamp(inputs.tenant_pool_share, 1e-6, 1.0);
  d.fact_rows = spec.schema->fact().NumRows();
  d.selectivity = EstimateSelectivity(spec, &d.dim_build_rows);

  const double fact = static_cast<double>(d.fact_rows);
  const double passing = fact * d.selectivity;

  // Baseline: private dimension builds, then a private fact scan whose
  // probe pipeline (most selective join first) rejects most tuples early
  // when the query is selective. A backlog in the pool delays the start,
  // which the queue penalty models as a multiplicative inflation. Under
  // weighted-fair scheduling the tenant commands only its share of the
  // workers, and what delays it is its *own* backlog (fair dequeue lets
  // it jump the others'); the share-scaled global backlog is the
  // fallback when per-tenant state is absent, and degenerates to the
  // pre-tenancy queued/workers term at share 1.
  const double effective_workers =
      std::max(1e-6, static_cast<double>(std::max<size_t>(
                         1, inputs.baseline_workers)) *
                         d.tenant_pool_share);
  const double backlog =
      std::max(static_cast<double>(inputs.tenant_baseline_queued),
               static_cast<double>(inputs.baseline_queued) *
                   d.tenant_pool_share);
  const double queue_factor =
      1.0 + opts_.baseline_queue_penalty * backlog / effective_workers;
  d.baseline_work_units =
      static_cast<double>(d.dim_build_rows) +
      fact * (1.0 + opts_.probe_weight * d.selectivity);
  d.baseline_cost = d.baseline_work_units * queue_factor;

  // CJOIN: joins the always-on lap of every pipeline instance. Each of the
  // N shards scans only ~1/N of the fact table, and every shard's scan +
  // filter work is shared across the same in-flight queries (a query
  // registers on all shards, so the per-shard load equals the logical
  // load); routing/aggregation of the query's own output tuples is never
  // shared.
  d.cjoin_work_units = (fact / static_cast<double>(d.shards)) *
                           opts_.cjoin_tuple_weight /
                           static_cast<double>(inputs.inflight + 1) +
                       opts_.cjoin_fixed_cost + passing * opts_.route_weight;
  d.cjoin_cost = d.cjoin_work_units;

  // A tenant near its CJOIN slot quota pays a scarcity premium: occupancy
  // over free slots, weighted — so the optimizer steers it toward the
  // baseline before the admission gate would shed it outright.
  double scarcity_factor = 1.0;
  if (d.tenant_cjoin_slots != 0) {
    const size_t used =
        std::min(d.tenant_inflight_cjoin, d.tenant_cjoin_slots);
    const size_t free_slots = d.tenant_cjoin_slots - used;
    scarcity_factor = 1.0 + opts_.tenant_slot_penalty *
                                static_cast<double>(used) /
                                static_cast<double>(free_slots + 1);
    d.cjoin_cost *= scarcity_factor;
  }
  d.static_cjoin_cost = d.cjoin_cost;
  d.static_baseline_cost = d.baseline_cost;

  // The feedback loop: once both routes carry enough fresh evidence,
  // compare fitted service seconds (inflated by the same queue /
  // scarcity factors, which model waiting rather than work) instead of
  // static units. A cold route keeps its static defaults — and because
  // static units and fitted seconds are incommensurable, calibration
  // only kicks in when BOTH fits are warm.
  if (calibrator_ != nullptr && opts_.calibration.enabled) {
    const CalibrationSnapshot snap = calibrator_->Snapshot();
    if (snap.BothWarm()) {
      d.calibrated = true;
      d.cjoin_cost =
          snap.cjoin.PredictSeconds(d.cjoin_work_units) * scarcity_factor;
      d.baseline_cost =
          snap.baseline.PredictSeconds(d.baseline_work_units) *
          queue_factor;
    } else if (mode == DecideMode::kExecute) {
      // One-sided evidence cannot flip the comparison, so the decision
      // below follows the static model — except when the exploration
      // policy elects this query to warm up the cold route. Never
      // explore toward a route whose admission probe says the gate
      // would shed the query: the flip would turn into a user-visible
      // kResourceExhausted, and a shed query produces no observation,
      // so the cold fit would never warm and the spurious failures
      // would repeat forever. (Queued is fine — a parked exploration
      // still completes and reports.)
      const RouteChoice preferred =
          d.static_baseline_cost < d.static_cjoin_cost
              ? RouteChoice::kBaseline
              : RouteChoice::kCJoin;
      const bool flip_would_shed = preferred == RouteChoice::kBaseline
                                       ? inputs.cjoin_would_shed
                                       : inputs.baseline_would_shed;
      if (!flip_would_shed && calibrator_->ShouldExplore(snap, preferred)) {
        d.explored = true;
        d.choice = preferred == RouteChoice::kCJoin
                       ? RouteChoice::kBaseline
                       : RouteChoice::kCJoin;
        d.reason =
            "exploring the cold route to gather calibration evidence";
        calibrator_->CountDecision(d);
        return d;
      }
    }
  }

  if (d.baseline_cost < d.cjoin_cost) {
    d.choice = RouteChoice::kBaseline;
    if (d.calibrated) {
      d.reason = "calibrated: private plan is faster at current load";
    } else if (d.tenant_cjoin_slots != 0 &&
               d.tenant_inflight_cjoin + 1 >= d.tenant_cjoin_slots) {
      d.reason = "tenant near its CJOIN slot quota: private plan avoids "
                 "shedding";
    } else if (inputs.inflight == 0) {
      d.reason = "selective query, idle operator: private plan is cheaper";
    } else {
      d.reason = "private plan is cheaper at current load";
    }
  } else {
    d.choice = RouteChoice::kCJoin;
    if (d.calibrated) {
      d.reason = "calibrated: shared pipeline is faster at current load";
    } else if (inputs.baseline_queued > 0) {
      d.reason = "baseline pool backlogged: shared pipeline is cheaper";
    } else if (inputs.inflight > 0) {
      d.reason = "shared scan amortized over in-flight queries";
    } else if (d.shards > 1) {
      d.reason = "sharded scan divides the lap: shared pipeline is cheaper";
    } else {
      d.reason = "unselective query: shared pipeline is cheaper";
    }
  }
  if (calibrator_ != nullptr && mode == DecideMode::kExecute) {
    calibrator_->CountDecision(d);
  }
  return d;
}

}  // namespace cjoin
