#include "engine/router.h"

#include <algorithm>
#include <cstdio>

namespace cjoin {

const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kAuto:
      return "auto";
    case RoutePolicy::kCJoin:
      return "cjoin";
    case RoutePolicy::kBaseline:
      return "baseline";
  }
  return "?";
}

const char* RouteChoiceName(RouteChoice choice) {
  switch (choice) {
    case RouteChoice::kCJoin:
      return "CJOIN";
    case RouteChoice::kBaseline:
      return "baseline";
  }
  return "?";
}

std::string RouteDecision::ToString() const {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "route: %s%s\n"
                "  selectivity     %.4f\n"
                "  fact rows       %llu\n"
                "  dim build rows  %llu\n"
                "  in-flight       %zu\n"
                "  shards          %zu\n"
                "  baseline queue  %zu\n"
                "  cost(cjoin)     %.0f\n"
                "  cost(baseline)  %.0f\n"
                "  reason          %s",
                RouteChoiceName(choice), forced ? " (forced by policy)" : "",
                selectivity, static_cast<unsigned long long>(fact_rows),
                static_cast<unsigned long long>(dim_build_rows), inflight,
                shards, baseline_queued, cjoin_cost, baseline_cost,
                reason.c_str());
  std::string out = buf;
  if (!tenant.empty()) {
    char slots[32];
    if (tenant_cjoin_slots == 0) {
      std::snprintf(slots, sizeof(slots), "unlimited");
    } else {
      std::snprintf(slots, sizeof(slots), "%zu", tenant_cjoin_slots);
    }
    std::snprintf(buf, sizeof(buf),
                  "\n"
                  "  tenant          %s\n"
                  "  tenant slots    %zu/%s in flight\n"
                  "  pool share      %.2f\n"
                  "  admission       %s",
                  tenant.c_str(), tenant_inflight_cjoin, slots,
                  tenant_pool_share,
                  admission.empty() ? "-" : admission.c_str());
    out += buf;
  }
  return out;
}

double Router::EstimateSelectivity(const StarQuerySpec& spec,
                                   uint64_t* dim_build_rows) const {
  double combined = 1.0;
  uint64_t build_rows = 0;
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    const DimensionDef& def = spec.schema->dimension(dp.dim_index);
    const Table& dim = *def.table;
    const uint64_t total = dim.NumRows();
    if (total == 0) continue;
    double frac = 1.0;
    if (dp.predicate != nullptr && !IsTrueLiteral(dp.predicate)) {
      // Evenly strided sample over each partition (dimensions are small
      // and memory-resident, so this is a handful of microseconds).
      const Schema& dschema = dim.schema();
      const uint64_t step =
          std::max<uint64_t>(1, total / std::max<size_t>(
                                            1, opts_.selectivity_sample_rows));
      uint64_t sampled = 0, passed = 0;
      for (uint32_t p = 0; p < dim.num_partitions(); ++p) {
        const uint64_t n = dim.PartitionRows(p);
        for (uint64_t i = 0; i < n; i += step) {
          const RowId id{p, i};
          if (!dim.Header(id)->VisibleAt(spec.snapshot)) continue;
          ++sampled;
          if (dp.predicate->EvalBool(dschema, dim.RowPayload(id))) ++passed;
        }
      }
      frac = sampled == 0 ? 1.0
                          : static_cast<double>(passed) /
                                static_cast<double>(sampled);
    }
    combined *= frac;
    build_rows += static_cast<uint64_t>(frac * static_cast<double>(total));
  }
  if (dim_build_rows != nullptr) *dim_build_rows = build_rows;
  return combined;
}

RouteDecision Router::Decide(const StarQuerySpec& spec,
                             const RouteInputs& inputs) const {
  RouteDecision d;
  d.inflight = inputs.inflight;
  d.shards = std::max<size_t>(1, inputs.shards);
  d.baseline_queued = inputs.baseline_queued;
  d.tenant_inflight_cjoin = inputs.tenant_inflight_cjoin;
  d.tenant_cjoin_slots = inputs.tenant_cjoin_slots;
  d.tenant_pool_share =
      std::clamp(inputs.tenant_pool_share, 1e-6, 1.0);
  d.fact_rows = spec.schema->fact().NumRows();
  d.selectivity = EstimateSelectivity(spec, &d.dim_build_rows);

  const double fact = static_cast<double>(d.fact_rows);
  const double passing = fact * d.selectivity;

  // Baseline: private dimension builds, then a private fact scan whose
  // probe pipeline (most selective join first) rejects most tuples early
  // when the query is selective. A backlog in the pool delays the start,
  // which the queue penalty models as a multiplicative inflation. Under
  // weighted-fair scheduling the tenant commands only its share of the
  // workers, and what delays it is its *own* backlog (fair dequeue lets
  // it jump the others'); the share-scaled global backlog is the
  // fallback when per-tenant state is absent, and degenerates to the
  // pre-tenancy queued/workers term at share 1.
  const double effective_workers =
      std::max(1e-6, static_cast<double>(std::max<size_t>(
                         1, inputs.baseline_workers)) *
                         d.tenant_pool_share);
  const double backlog =
      std::max(static_cast<double>(inputs.tenant_baseline_queued),
               static_cast<double>(inputs.baseline_queued) *
                   d.tenant_pool_share);
  const double queue_factor =
      1.0 + opts_.baseline_queue_penalty * backlog / effective_workers;
  d.baseline_cost = (static_cast<double>(d.dim_build_rows) +
                     fact * (1.0 + opts_.probe_weight * d.selectivity)) *
                    queue_factor;

  // CJOIN: joins the always-on lap of every pipeline instance. Each of the
  // N shards scans only ~1/N of the fact table, and every shard's scan +
  // filter work is shared across the same in-flight queries (a query
  // registers on all shards, so the per-shard load equals the logical
  // load); routing/aggregation of the query's own output tuples is never
  // shared.
  d.cjoin_cost = (fact / static_cast<double>(d.shards)) *
                     opts_.cjoin_tuple_weight /
                     static_cast<double>(inputs.inflight + 1) +
                 opts_.cjoin_fixed_cost + passing * opts_.route_weight;

  // A tenant near its CJOIN slot quota pays a scarcity premium: occupancy
  // over free slots, weighted — so the optimizer steers it toward the
  // baseline before the admission gate would shed it outright.
  if (d.tenant_cjoin_slots != 0) {
    const size_t used =
        std::min(d.tenant_inflight_cjoin, d.tenant_cjoin_slots);
    const size_t free_slots = d.tenant_cjoin_slots - used;
    d.cjoin_cost *= 1.0 + opts_.tenant_slot_penalty *
                              static_cast<double>(used) /
                              static_cast<double>(free_slots + 1);
  }

  if (d.baseline_cost < d.cjoin_cost) {
    d.choice = RouteChoice::kBaseline;
    if (d.tenant_cjoin_slots != 0 &&
        d.tenant_inflight_cjoin + 1 >= d.tenant_cjoin_slots) {
      d.reason = "tenant near its CJOIN slot quota: private plan avoids "
                 "shedding";
    } else if (inputs.inflight == 0) {
      d.reason = "selective query, idle operator: private plan is cheaper";
    } else {
      d.reason = "private plan is cheaper at current load";
    }
  } else {
    d.choice = RouteChoice::kCJoin;
    if (inputs.baseline_queued > 0) {
      d.reason = "baseline pool backlogged: shared pipeline is cheaper";
    } else if (inputs.inflight > 0) {
      d.reason = "shared scan amortized over in-flight queries";
    } else if (d.shards > 1) {
      d.reason = "sharded scan divides the lap: shared pipeline is cheaper";
    } else {
      d.reason = "unselective query: shared pipeline is cheaper";
    }
  }
  return d;
}

}  // namespace cjoin
