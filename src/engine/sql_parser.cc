#include "engine/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <memory>
#include <optional>
#include <set>
#include <vector>

namespace cjoin {

namespace {

// ----------------------------- Lexer ----------------------------------------

enum class Tok {
  kEnd,
  kIdent,
  kNumber,
  kString,
  kComma,
  kLParen,
  kRParen,
  kStar,     // '*'
  kPlus,
  kMinus,
  kSlash,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // identifier (upper-cased keyword check uses this)
  double num = 0;
  bool num_is_int = false;
  int64_t inum = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = sql_.size();
    while (i < n) {
      const char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(sql_[j])) ||
                         sql_[j] == '_' || sql_[j] == '.')) {
          ++j;
        }
        t.kind = Tok::kIdent;
        t.text = std::string(sql_.substr(i, j - i));
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && i + 1 < n &&
                  std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        size_t j = i;
        bool is_double = false;
        while (j < n && (std::isdigit(static_cast<unsigned char>(sql_[j])) ||
                         sql_[j] == '.')) {
          if (sql_[j] == '.') is_double = true;
          ++j;
        }
        t.kind = Tok::kNumber;
        // No throwing conversions: statements arrive off the wire, and a
        // hostile literal ("999...9" past int64, "1.2.3") must come back
        // as kInvalidArgument, never as an exception or abort.
        const std::string text(sql_.substr(i, j - i));
        const char* first = text.data();
        const char* last = first + text.size();
        if (is_double) {
          auto [p, ec] = std::from_chars(first, last, t.num);
          if (ec != std::errc() || p != last) {
            return Status::InvalidArgument("malformed numeric literal '" +
                                           text + "'");
          }
          t.num_is_int = false;
        } else {
          auto [p, ec] = std::from_chars(first, last, t.inum);
          if (ec != std::errc() || p != last) {
            return Status::InvalidArgument("integer literal '" + text +
                                           "' out of range");
          }
          t.num_is_int = true;
        }
        i = j;
      } else if (c == '\'') {
        size_t j = i + 1;
        std::string s;
        while (j < n && sql_[j] != '\'') {
          s.push_back(sql_[j]);
          ++j;
        }
        if (j >= n) {
          return Status::InvalidArgument("unterminated string literal");
        }
        t.kind = Tok::kString;
        t.text = std::move(s);
        i = j + 1;
      } else {
        switch (c) {
          case ',':
            t.kind = Tok::kComma;
            ++i;
            break;
          case '(':
            t.kind = Tok::kLParen;
            ++i;
            break;
          case ')':
            t.kind = Tok::kRParen;
            ++i;
            break;
          case '*':
            t.kind = Tok::kStar;
            ++i;
            break;
          case '+':
            t.kind = Tok::kPlus;
            ++i;
            break;
          case '-':
            t.kind = Tok::kMinus;
            ++i;
            break;
          case '/':
            t.kind = Tok::kSlash;
            ++i;
            break;
          case ';':
            t.kind = Tok::kSemicolon;
            ++i;
            break;
          case '=':
            t.kind = Tok::kEq;
            ++i;
            break;
          case '<':
            if (i + 1 < n && sql_[i + 1] == '=') {
              t.kind = Tok::kLe;
              i += 2;
            } else if (i + 1 < n && sql_[i + 1] == '>') {
              t.kind = Tok::kNe;
              i += 2;
            } else {
              t.kind = Tok::kLt;
              ++i;
            }
            break;
          case '>':
            if (i + 1 < n && sql_[i + 1] == '=') {
              t.kind = Tok::kGe;
              i += 2;
            } else {
              t.kind = Tok::kGt;
              ++i;
            }
            break;
          case '!':
            if (i + 1 < n && sql_[i + 1] == '=') {
              t.kind = Tok::kNe;
              i += 2;
              break;
            }
            [[fallthrough]];
          default:
            return Status::InvalidArgument(
                std::string("unexpected character '") + c + "' at offset " +
                std::to_string(i));
        }
      }
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = Tok::kEnd;
    end.pos = n;
    out.push_back(end);
    return out;
  }

 private:
  std::string_view sql_;
};

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

// ------------------------- Parser AST ---------------------------------------

/// Untyped predicate / scalar AST; lowered to ExprPtr per table after the
/// referenced table is determined.
struct PNode {
  enum class Kind {
    kColumn,
    kLiteral,
    kCmp,
    kBetween,
    kIn,
    kLike,
    kAnd,
    kOr,
    kNot,
    kArith,
  };
  Kind kind;
  // kColumn
  std::string column;
  // kLiteral
  Value literal;
  // kCmp / kArith
  CmpOp cmp = CmpOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  // children
  std::shared_ptr<PNode> a, b, c;
  // kIn
  std::vector<Value> in_values;
  // kLike
  std::string like_pattern;
};
using PNodePtr = std::shared_ptr<PNode>;

PNodePtr MakeNode(PNode::Kind k) {
  auto n = std::make_shared<PNode>();
  n->kind = k;
  return n;
}

/// One parsed SELECT item.
struct SelectItem {
  bool is_aggregate = false;
  AggFn fn = AggFn::kCount;
  bool count_star = false;
  PNodePtr expr;  // aggregate input or plain column expression
  std::string alias;
};

struct ParsedQuery {
  std::vector<SelectItem> select;
  std::vector<std::string> tables;
  PNodePtr where;  // may be null
  std::vector<std::string> group_by;
};

// ------------------------------ Parser --------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    CJOIN_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    CJOIN_RETURN_IF_ERROR(ParseSelectList(&q));
    CJOIN_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    CJOIN_RETURN_IF_ERROR(ParseTableList(&q));
    if (IsKeyword("WHERE")) {
      Advance();
      CJOIN_ASSIGN_OR_RETURN(q.where, ParseOr());
    }
    if (IsKeyword("GROUP")) {
      Advance();
      CJOIN_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        if (Cur().kind != Tok::kIdent) {
          return Error("expected column name in GROUP BY");
        }
        q.group_by.push_back(Cur().text);
        Advance();
        if (Cur().kind != Tok::kComma) break;
        Advance();
      }
    }
    if (IsKeyword("ORDER")) {
      // ORDER BY is accepted and ignored (result order is unspecified).
      Advance();
      CJOIN_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (Cur().kind == Tok::kIdent || Cur().kind == Tok::kComma) {
        Advance();
        if (IsKeyword("ASC") || IsKeyword("DESC")) Advance();
      }
    }
    if (Cur().kind == Tok::kSemicolon) Advance();
    if (Cur().kind != Tok::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return q;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  void Advance() { ++pos_; }

  bool IsKeyword(const char* kw) const {
    return Cur().kind == Tok::kIdent && Upper(Cur().text) == kw;
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Cur().pos));
  }

  static std::optional<AggFn> AggFromName(const std::string& upper) {
    if (upper == "COUNT") return AggFn::kCount;
    if (upper == "SUM") return AggFn::kSum;
    if (upper == "MIN") return AggFn::kMin;
    if (upper == "MAX") return AggFn::kMax;
    if (upper == "AVG") return AggFn::kAvg;
    return std::nullopt;
  }

  Status ParseSelectList(ParsedQuery* q) {
    for (;;) {
      SelectItem item;
      if (Cur().kind == Tok::kIdent) {
        const std::string upper = Upper(Cur().text);
        auto fn = AggFromName(upper);
        if (fn.has_value() && toks_[pos_ + 1].kind == Tok::kLParen) {
          item.is_aggregate = true;
          item.fn = *fn;
          Advance();  // fn name
          Advance();  // '('
          if (Cur().kind == Tok::kStar) {
            if (*fn != AggFn::kCount) {
              return Error("only COUNT accepts *");
            }
            item.count_star = true;
            Advance();
          } else {
            CJOIN_ASSIGN_OR_RETURN(item.expr, ParseArith());
          }
          if (Cur().kind != Tok::kRParen) return Error("expected )");
          Advance();
        } else {
          CJOIN_ASSIGN_OR_RETURN(item.expr, ParseArith());
        }
      } else {
        return Error("expected select item");
      }
      if (IsKeyword("AS")) {
        Advance();
        if (Cur().kind != Tok::kIdent) return Error("expected alias");
        item.alias = Cur().text;
        Advance();
      }
      q->select.push_back(std::move(item));
      if (Cur().kind != Tok::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseTableList(ParsedQuery* q) {
    for (;;) {
      if (Cur().kind != Tok::kIdent) return Error("expected table name");
      q->tables.push_back(Cur().text);
      Advance();
      // Optional alias (ignored; columns are resolved globally).
      if (Cur().kind == Tok::kIdent && !IsKeyword("WHERE") &&
          !IsKeyword("GROUP") && !IsKeyword("ORDER")) {
        Advance();
      }
      if (Cur().kind != Tok::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  // Boolean grammar: or := and (OR and)* ; and := unary (AND unary)* ;
  // unary := NOT unary | '(' or ')' | predicate.
  Result<PNodePtr> ParseOr() {
    CJOIN_ASSIGN_OR_RETURN(PNodePtr left, ParseAnd());
    while (IsKeyword("OR")) {
      Advance();
      CJOIN_ASSIGN_OR_RETURN(PNodePtr right, ParseAnd());
      auto n = MakeNode(PNode::Kind::kOr);
      n->a = left;
      n->b = right;
      left = n;
    }
    return left;
  }

  Result<PNodePtr> ParseAnd() {
    CJOIN_ASSIGN_OR_RETURN(PNodePtr left, ParseBoolUnary());
    while (IsKeyword("AND")) {
      Advance();
      CJOIN_ASSIGN_OR_RETURN(PNodePtr right, ParseBoolUnary());
      auto n = MakeNode(PNode::Kind::kAnd);
      n->a = left;
      n->b = right;
      left = n;
    }
    return left;
  }

  /// Scoped recursion-depth bound for the expression grammar: a hostile
  /// statement of 100k open parens must fail with kInvalidArgument, not
  /// overflow the stack.
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };
  static constexpr int kMaxExprDepth = 200;

  Result<PNodePtr> ParseBoolUnary() {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxExprDepth) {
      return Error("expression nests too deeply");
    }
    if (IsKeyword("NOT")) {
      Advance();
      CJOIN_ASSIGN_OR_RETURN(PNodePtr inner, ParseBoolUnary());
      auto n = MakeNode(PNode::Kind::kNot);
      n->a = inner;
      return n;
    }
    if (Cur().kind == Tok::kLParen) {
      // Could be a parenthesized boolean or the start of an arithmetic
      // expression; try boolean first by scanning for a comparison at
      // depth 0 after the paren — simpler: parse as boolean, which
      // subsumes comparisons of parenthesized arithmetic.
      Advance();
      CJOIN_ASSIGN_OR_RETURN(PNodePtr inner, ParseOr());
      if (Cur().kind != Tok::kRParen) return Error("expected )");
      Advance();
      return inner;
    }
    return ParsePredicate();
  }

  Result<PNodePtr> ParsePredicate() {
    CJOIN_ASSIGN_OR_RETURN(PNodePtr lhs, ParseArith());
    if (IsKeyword("BETWEEN")) {
      Advance();
      CJOIN_ASSIGN_OR_RETURN(Value lo, ParseLiteralValue());
      CJOIN_RETURN_IF_ERROR(ExpectKeyword("AND"));
      CJOIN_ASSIGN_OR_RETURN(Value hi, ParseLiteralValue());
      auto n = MakeNode(PNode::Kind::kBetween);
      n->a = lhs;
      n->literal = lo;
      n->in_values = {hi};  // stash hi in in_values[0]
      return n;
    }
    if (IsKeyword("IN")) {
      Advance();
      if (Cur().kind != Tok::kLParen) return Error("expected ( after IN");
      Advance();
      auto n = MakeNode(PNode::Kind::kIn);
      n->a = lhs;
      for (;;) {
        CJOIN_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        n->in_values.push_back(std::move(v));
        if (Cur().kind != Tok::kComma) break;
        Advance();
      }
      if (Cur().kind != Tok::kRParen) return Error("expected )");
      Advance();
      return n;
    }
    if (IsKeyword("LIKE")) {
      Advance();
      if (Cur().kind != Tok::kString) {
        return Error("LIKE requires a string literal");
      }
      std::string pattern = Cur().text;
      Advance();
      if (pattern.empty() || pattern.back() != '%' ||
          pattern.find('%') != pattern.size() - 1 ||
          pattern.find('_') != std::string::npos) {
        return Error("only prefix LIKE patterns ('abc%') are supported");
      }
      auto n = MakeNode(PNode::Kind::kLike);
      n->a = lhs;
      n->like_pattern = pattern.substr(0, pattern.size() - 1);
      return n;
    }
    CmpOp op;
    switch (Cur().kind) {
      case Tok::kEq:
        op = CmpOp::kEq;
        break;
      case Tok::kNe:
        op = CmpOp::kNe;
        break;
      case Tok::kLt:
        op = CmpOp::kLt;
        break;
      case Tok::kLe:
        op = CmpOp::kLe;
        break;
      case Tok::kGt:
        op = CmpOp::kGt;
        break;
      case Tok::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    CJOIN_ASSIGN_OR_RETURN(PNodePtr rhs, ParseArith());
    auto n = MakeNode(PNode::Kind::kCmp);
    n->cmp = op;
    n->a = lhs;
    n->b = rhs;
    return n;
  }

  Result<Value> ParseLiteralValue() {
    if (Cur().kind == Tok::kNumber) {
      Value v = Cur().num_is_int ? Value(Cur().inum) : Value(Cur().num);
      Advance();
      return v;
    }
    if (Cur().kind == Tok::kString) {
      Value v(Cur().text);
      Advance();
      return v;
    }
    if (Cur().kind == Tok::kMinus) {
      Advance();
      if (Cur().kind != Tok::kNumber) return Error("expected number");
      Value v = Cur().num_is_int ? Value(-Cur().inum) : Value(-Cur().num);
      Advance();
      return v;
    }
    return Error("expected literal");
  }

  Result<PNodePtr> ParseArith() {
    CJOIN_ASSIGN_OR_RETURN(PNodePtr left, ParseTerm());
    while (Cur().kind == Tok::kPlus || Cur().kind == Tok::kMinus) {
      const ArithOp op =
          Cur().kind == Tok::kPlus ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      CJOIN_ASSIGN_OR_RETURN(PNodePtr right, ParseTerm());
      auto n = MakeNode(PNode::Kind::kArith);
      n->arith = op;
      n->a = left;
      n->b = right;
      left = n;
    }
    return left;
  }

  Result<PNodePtr> ParseTerm() {
    CJOIN_ASSIGN_OR_RETURN(PNodePtr left, ParseFactor());
    while (Cur().kind == Tok::kStar || Cur().kind == Tok::kSlash) {
      const ArithOp op =
          Cur().kind == Tok::kStar ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      CJOIN_ASSIGN_OR_RETURN(PNodePtr right, ParseFactor());
      auto n = MakeNode(PNode::Kind::kArith);
      n->arith = op;
      n->a = left;
      n->b = right;
      left = n;
    }
    return left;
  }

  Result<PNodePtr> ParseFactor() {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxExprDepth) {
      return Error("expression nests too deeply");
    }
    if (Cur().kind == Tok::kLParen) {
      Advance();
      CJOIN_ASSIGN_OR_RETURN(PNodePtr inner, ParseArith());
      if (Cur().kind != Tok::kRParen) return Error("expected )");
      Advance();
      return inner;
    }
    if (Cur().kind == Tok::kNumber) {
      auto n = MakeNode(PNode::Kind::kLiteral);
      n->literal = Cur().num_is_int ? Value(Cur().inum) : Value(Cur().num);
      Advance();
      return n;
    }
    if (Cur().kind == Tok::kString) {
      auto n = MakeNode(PNode::Kind::kLiteral);
      n->literal = Value(Cur().text);
      Advance();
      return n;
    }
    if (Cur().kind == Tok::kMinus) {
      Advance();
      if (Cur().kind != Tok::kNumber) return Error("expected number");
      auto n = MakeNode(PNode::Kind::kLiteral);
      n->literal = Cur().num_is_int ? Value(-Cur().inum) : Value(-Cur().num);
      Advance();
      return n;
    }
    if (Cur().kind == Tok::kIdent) {
      auto n = MakeNode(PNode::Kind::kColumn);
      // Strip an optional table qualifier ("t.col" -> "col").
      const std::string& text = Cur().text;
      const size_t dot = text.find('.');
      n->column = dot == std::string::npos ? text : text.substr(dot + 1);
      Advance();
      return n;
    }
    return Error("expected expression");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  int depth_ = 0;  ///< live expression-recursion depth (DepthGuard)
};

// --------------------------- Semantic analysis ------------------------------

/// Which table a column belongs to: -1 = fact, >= 0 = dimension index,
/// -2 = not found.
struct Resolver {
  const StarSchema& star;
  std::set<std::string> from_tables;  // lower bound: tables listed in FROM

  int TableOf(const std::string& column, size_t* col_idx) const {
    const int fact_col = star.fact().schema().ColumnIndex(column);
    if (fact_col >= 0) {
      *col_idx = static_cast<size_t>(fact_col);
      return -1;
    }
    for (size_t d = 0; d < star.num_dimensions(); ++d) {
      const int c = star.dimension(d).table->schema().ColumnIndex(column);
      if (c >= 0) {
        *col_idx = static_cast<size_t>(c);
        return static_cast<int>(d);
      }
    }
    *col_idx = 0;
    return -2;
  }

  const Schema& SchemaOf(int table) const {
    return table < 0 ? star.fact().schema()
                     : star.dimension(static_cast<size_t>(table))
                           .table->schema();
  }
};

/// Collects the tables referenced by a PNode tree. Returns false on
/// unknown column (sets *bad_column).
bool CollectTables(const Resolver& r, const PNodePtr& n,
                   std::set<int>* tables, std::string* bad_column) {
  if (n == nullptr) return true;
  if (n->kind == PNode::Kind::kColumn) {
    size_t idx;
    const int t = r.TableOf(n->column, &idx);
    if (t == -2) {
      *bad_column = n->column;
      return false;
    }
    tables->insert(t);
    return true;
  }
  return CollectTables(r, n->a, tables, bad_column) &&
         CollectTables(r, n->b, tables, bad_column) &&
         CollectTables(r, n->c, tables, bad_column);
}

/// Lowers a PNode tree to an ExprPtr over `table`'s schema. All columns
/// in the tree must belong to that table.
Result<ExprPtr> Lower(const Resolver& r, int table, const PNodePtr& n) {
  const Schema& schema = r.SchemaOf(table);
  switch (n->kind) {
    case PNode::Kind::kColumn: {
      size_t idx;
      const int t = r.TableOf(n->column, &idx);
      if (t != table) {
        return Status::InvalidArgument(
            "predicate mixes tables (column " + n->column + ")");
      }
      (void)schema;
      return MakeColumnRef(idx);
    }
    case PNode::Kind::kLiteral:
      return MakeLiteral(n->literal);
    case PNode::Kind::kCmp: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      CJOIN_ASSIGN_OR_RETURN(ExprPtr b, Lower(r, table, n->b));
      return MakeCompare(n->cmp, std::move(a), std::move(b));
    }
    case PNode::Kind::kBetween: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      return MakeBetween(std::move(a), n->literal, n->in_values[0]);
    }
    case PNode::Kind::kIn: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      return MakeInList(std::move(a), n->in_values);
    }
    case PNode::Kind::kLike: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      return MakePrefixMatch(std::move(a), n->like_pattern);
    }
    case PNode::Kind::kAnd: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      CJOIN_ASSIGN_OR_RETURN(ExprPtr b, Lower(r, table, n->b));
      return MakeAnd(std::move(a), std::move(b));
    }
    case PNode::Kind::kOr: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      CJOIN_ASSIGN_OR_RETURN(ExprPtr b, Lower(r, table, n->b));
      return MakeOr(std::move(a), std::move(b));
    }
    case PNode::Kind::kNot: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      return MakeNot(std::move(a));
    }
    case PNode::Kind::kArith: {
      CJOIN_ASSIGN_OR_RETURN(ExprPtr a, Lower(r, table, n->a));
      CJOIN_ASSIGN_OR_RETURN(ExprPtr b, Lower(r, table, n->b));
      return MakeArith(n->arith, std::move(a), std::move(b));
    }
  }
  return Status::Internal("unhandled node kind");
}

/// Splits the WHERE tree into top-level AND conjuncts.
void SplitConjuncts(const PNodePtr& n, std::vector<PNodePtr>* out) {
  if (n == nullptr) return;
  if (n->kind == PNode::Kind::kAnd) {
    SplitConjuncts(n->a, out);
    SplitConjuncts(n->b, out);
  } else {
    out->push_back(n);
  }
}

/// True if the conjunct is a fact-FK = dim-PK equi-join of `star`.
/// Sets *dim_index on success.
bool IsJoinConjunct(const Resolver& r, const PNodePtr& n,
                    size_t* dim_index) {
  if (n->kind != PNode::Kind::kCmp || n->cmp != CmpOp::kEq) return false;
  if (n->a->kind != PNode::Kind::kColumn ||
      n->b->kind != PNode::Kind::kColumn) {
    return false;
  }
  size_t ca, cb;
  const int ta = r.TableOf(n->a->column, &ca);
  const int tb = r.TableOf(n->b->column, &cb);
  // One side fact, one side dimension.
  int dim;
  size_t fact_col, dim_col;
  if (ta == -1 && tb >= 0) {
    dim = tb;
    fact_col = ca;
    dim_col = cb;
  } else if (tb == -1 && ta >= 0) {
    dim = ta;
    fact_col = cb;
    dim_col = ca;
  } else {
    return false;
  }
  const DimensionDef& def = r.star.dimension(static_cast<size_t>(dim));
  if (def.fact_fk_col != fact_col || def.dim_pk_col != dim_col) {
    return false;
  }
  *dim_index = static_cast<size_t>(dim);
  return true;
}

}  // namespace

Result<StarQuerySpec> ParseStarQuery(const StarSchema& star,
                                     std::string_view sql) {
  CJOIN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(sql).Tokenize());
  Parser parser(std::move(tokens));
  CJOIN_ASSIGN_OR_RETURN(ParsedQuery pq, parser.Parse());

  Resolver r{star, {}};

  // Check the FROM list: every table must be the fact or a dimension.
  bool fact_listed = false;
  std::set<size_t> dims_listed;
  for (const std::string& t : pq.tables) {
    if (t == star.fact().name()) {
      fact_listed = true;
      continue;
    }
    auto d = star.FindDimension(t);
    if (!d.ok()) {
      return Status::InvalidArgument("unknown table '" + t +
                                     "' in FROM clause");
    }
    dims_listed.insert(*d);
  }
  if (!fact_listed) {
    return Status::InvalidArgument("FROM clause must include the fact table " +
                                   star.fact().name());
  }

  StarQuerySpec spec;
  spec.schema = &star;

  // Classify WHERE conjuncts.
  std::vector<PNodePtr> conjuncts;
  SplitConjuncts(pq.where, &conjuncts);
  std::vector<ExprPtr> fact_conjuncts;
  std::set<size_t> joined_dims;
  for (const PNodePtr& c : conjuncts) {
    size_t dim_index;
    if (IsJoinConjunct(r, c, &dim_index)) {
      if (dims_listed.count(dim_index) == 0) {
        return Status::InvalidArgument(
            "join references a table missing from FROM");
      }
      joined_dims.insert(dim_index);
      continue;
    }
    std::set<int> tables;
    std::string bad;
    if (!CollectTables(r, c, &tables, &bad)) {
      return Status::InvalidArgument("unknown column '" + bad + "'");
    }
    if (tables.size() > 1) {
      return Status::InvalidArgument(
          "predicate references more than one table (star queries allow "
          "per-table predicates only)");
    }
    const int table = tables.empty() ? -1 : *tables.begin();
    CJOIN_ASSIGN_OR_RETURN(ExprPtr e, Lower(r, table, c));
    if (table == -1) {
      fact_conjuncts.push_back(std::move(e));
    } else {
      spec.dim_predicates.push_back(
          DimensionPredicate{static_cast<size_t>(table), std::move(e)});
    }
  }
  if (!fact_conjuncts.empty()) {
    spec.fact_predicate = MakeConjunction(std::move(fact_conjuncts));
  }
  // Every listed dimension must be joined to the fact table (no cross
  // products in the star template).
  for (size_t d : dims_listed) {
    if (joined_dims.count(d) == 0) {
      return Status::InvalidArgument(
          "dimension '" + star.dimension(d).table->name() +
          "' listed in FROM without a join predicate");
    }
  }
  // Predicates on dimensions that were never listed/joined are errors.
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    if (dims_listed.count(dp.dim_index) == 0) {
      return Status::InvalidArgument(
          "predicate on table missing from FROM: " +
          star.dimension(dp.dim_index).table->name());
    }
  }

  // SELECT list: plain columns must appear in GROUP BY (checked below);
  // aggregates lower to AggregateSpec.
  std::set<std::string> group_cols(pq.group_by.begin(), pq.group_by.end());
  for (const SelectItem& item : pq.select) {
    if (item.is_aggregate) {
      AggregateSpec agg;
      agg.fn = item.fn;
      agg.label = item.alias;
      if (!item.count_star) {
        std::set<int> tables;
        std::string bad;
        if (!CollectTables(r, item.expr, &tables, &bad)) {
          return Status::InvalidArgument("unknown column '" + bad + "'");
        }
        if (tables.size() != 1) {
          return Status::InvalidArgument(
              "aggregate input must reference exactly one table");
        }
        const int table = *tables.begin();
        if (item.expr->kind == PNode::Kind::kColumn) {
          size_t idx;
          r.TableOf(item.expr->column, &idx);
          agg.input = table == -1
                          ? ColumnSource::Fact(idx)
                          : ColumnSource::Dim(static_cast<size_t>(table), idx);
        } else if (table == -1) {
          CJOIN_ASSIGN_OR_RETURN(agg.fact_expr, Lower(r, -1, item.expr));
        } else {
          return Status::InvalidArgument(
              "aggregate expressions over dimension columns are not "
              "supported (use a plain dimension column)");
        }
      }
      spec.aggregates.push_back(std::move(agg));
    } else {
      if (item.expr->kind != PNode::Kind::kColumn) {
        return Status::InvalidArgument(
            "non-aggregate select items must be plain columns");
      }
      const std::string& col = item.expr->column;
      if (group_cols.count(col) == 0) {
        return Status::InvalidArgument("column '" + col +
                                       "' must appear in GROUP BY");
      }
    }
  }

  // GROUP BY columns.
  for (const std::string& col : pq.group_by) {
    size_t idx;
    const int t = r.TableOf(col, &idx);
    if (t == -2) {
      return Status::InvalidArgument("unknown GROUP BY column '" + col + "'");
    }
    spec.group_by.push_back(t == -1 ? ColumnSource::Fact(idx)
                                    : ColumnSource::Dim(
                                          static_cast<size_t>(t), idx));
    spec.group_by_labels.push_back(col);
    if (t >= 0) dims_listed.insert(static_cast<size_t>(t));
  }

  // Ensure every dimension referenced by outputs was listed in FROM.
  for (const ColumnSource& src : spec.group_by) {
    if (src.from == ColumnSource::From::kDimension &&
        joined_dims.count(src.dim_index) == 0) {
      return Status::InvalidArgument(
          "GROUP BY references unjoined dimension " +
          star.dimension(src.dim_index).table->name());
    }
  }

  // Make sure joined-but-unfiltered dimensions appear as TRUE entries so
  // NormalizeSpec keeps them referenced only when outputs need them; a
  // dimension joined in WHERE but never filtered or projected is a no-op
  // for key/FK joins and may be dropped.
  spec.label = "sql";
  return NormalizeSpec(std::move(spec));
}

}  // namespace cjoin
