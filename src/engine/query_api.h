// The unified asynchronous query API.
//
// QueryEngine::Execute(QueryRequest) is the single submission path for
// every query: structured StarQuerySpec or SQL text, routed to the shared
// CJOIN pipeline or the conventional query-at-a-time executor (by policy
// or by the §3.2.3 cost-based Router), with optional deadline and
// priority. Every path returns the same non-blocking QueryTicket:
//
//   QueryRequest req = QueryRequest::Sql("ssb", "SELECT ...");
//   req.timeout = std::chrono::seconds(5);
//   auto ticket = engine.Execute(std::move(req));
//   ... ticket->Cancel();                 // cooperative, any time
//   Result<ResultSet> rs = ticket->Wait();  // kCancelled / kDeadlineExceeded
//                                           // on early termination

#ifndef CJOIN_ENGINE_QUERY_API_H_
#define CJOIN_ENGINE_QUERY_API_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "baseline/qat_engine.h"
#include "catalog/query_spec.h"
#include "cjoin/query_runtime.h"
#include "common/mutex.h"
#include "engine/baseline_pool.h"
#include "engine/router.h"
#include "obs/query_trace.h"

namespace cjoin {

/// One query submission: what to run, where it may run, and its SLOs.
struct QueryRequest {
  /// Structured form; used when `spec.schema != nullptr`.
  StarQuerySpec spec;

  /// SQL form: `sql` parsed against the star registered as `star`; used
  /// when no structured spec is given.
  std::string star;
  std::string sql;

  /// Routing policy (§3.2.3): kAuto consults the cost-based Router.
  RoutePolicy policy = RoutePolicy::kAuto;

  /// Owning tenant for admission control and weighted-fair scheduling
  /// (empty = the "default" tenant). Quotas are keyed by this id; an
  /// over-quota submission's ticket resolves with kResourceExhausted
  /// instead of blocking.
  std::string tenant;

  /// Relative deadline from Execute() (zero = none). Expired queries are
  /// deregistered cooperatively and complete with kDeadlineExceeded.
  std::chrono::nanoseconds timeout{0};
  /// Absolute deadline, steady-clock nanos (0 = none); wins over timeout.
  int64_t deadline_ns = 0;

  /// Scheduling priority for the baseline worker pool (higher first).
  int priority = 0;

  /// Overrides the spec's / synthesized label when non-empty.
  std::string label;

  /// Per-request executor knobs for the baseline path (defaults to the
  /// engine's QatOptions); used by the bench harness to model the
  /// different comparison systems.
  std::optional<QatOptions> baseline_options;

  /// Per-query aggregator override on the CJOIN path (forces kCJoin);
  /// internal — used by the galaxy join (§5) to collect joined tuples.
  AggregatorFactory aggregator_factory;

  static QueryRequest FromSpec(StarQuerySpec s) {
    QueryRequest r;
    r.spec = std::move(s);
    return r;
  }
  static QueryRequest Sql(std::string star_name, std::string sql_text) {
    QueryRequest r;
    r.star = std::move(star_name);
    r.sql = std::move(sql_text);
    return r;
  }
};

/// Shared state of a CJOIN submission parked in the admission wait
/// queue: the caller's ticket waits on `promise` while the engine binds
/// the real pipeline handle once the admission controller grants a slot
/// (or resolves the promise directly on timeout / cancellation).
struct DeferredQuery {
  Mutex mu;
  /// Set at grant time. The completion observer installed at the
  /// deferred submission forwards the query's terminal result into
  /// `promise`, so the handle's own future is never consumed.
  std::unique_ptr<QueryHandle> handle GUARDED_BY(mu);
  bool cancelled GUARDED_BY(mu) = false;
  /// True once the controller's grant fired (with either outcome): the
  /// waiter no longer exists, so cancel_waiter must stay unset — the
  /// hook references the controller, which the ticket may outlive.
  bool waiter_done GUARDED_BY(mu) = false;
  /// Removes the parked waiter (engine-installed). Must be invoked
  /// *after* releasing mu (the controller calls back into this state
  /// from its grant path).
  std::function<void()> cancel_waiter GUARDED_BY(mu);

  std::promise<Result<ResultSet>> promise;
  std::string label;
  SnapshotId snapshot = 0;
  /// Per-query span trace, threaded into the pipeline submission once the
  /// slot is granted (may be null).
  std::shared_ptr<obs::QueryTrace> trace;
  std::atomic<int64_t> submit_ns{0};
  /// Set when the admission controller granted the slot (0 while still
  /// parked): granted_ns - submit_ns is the wait-queue residence, which
  /// the route calibrator attributes to queueing rather than service.
  std::atomic<int64_t> granted_ns{0};
  std::atomic<int64_t> completed_ns{0};

  /// Resolves the promise exactly once; later callers are no-ops.
  bool TryResolve(Result<ResultSet> result) {
    bool expected = false;
    if (!resolved_.compare_exchange_strong(expected, true)) return false;
    completed_ns.store(QueryRuntime::NowNs(), std::memory_order_relaxed);
    promise.set_value(std::move(result));
    return true;
  }

 private:
  std::atomic<bool> resolved_{false};
};

/// Uniform non-blocking handle to a query executing on either engine.
class QueryTicket {
 public:
  /// CJOIN-routed ticket.
  QueryTicket(RouteDecision decision, std::unique_ptr<QueryHandle> handle);
  /// Baseline-routed ticket.
  QueryTicket(RouteDecision decision, std::shared_ptr<BaselineJob> job,
              std::future<Result<ResultSet>> future);
  /// Immediately-resolved ticket: a submission the admission gate shed
  /// (kResourceExhausted) or whose deadline expired before submission.
  /// Uniform-ticket contract: Execute() only *fails* on malformed
  /// requests; overload resolves through the ticket, without blocking.
  QueryTicket(RouteDecision decision, std::string label,
              SnapshotId snapshot, Result<ResultSet> immediate);
  /// Wait-queued CJOIN ticket (admission granted a place in the bounded
  /// wait queue instead of a slot).
  QueryTicket(RouteDecision decision, std::shared_ptr<DeferredQuery> deferred,
              std::future<Result<ResultSet>> future);
  ~QueryTicket();

  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;

  /// The engine this query was routed to.
  RouteChoice route() const { return decision_.choice; }
  /// The routing decision with its cost-model evidence.
  const RouteDecision& decision() const { return decision_; }

  const std::string& label() const;

  /// The snapshot this query actually reads (after any engine capping).
  SnapshotId snapshot() const;

  /// Blocks until the result is available. Cancelled queries yield
  /// kCancelled, deadline-expired ones kDeadlineExceeded. Single-shot.
  Result<ResultSet> Wait();

  /// True once Wait() would not block.
  bool Ready() const;

  /// Requests cooperative cancellation (non-blocking, idempotent, safe
  /// after completion). The query's resources — including its CJOIN
  /// bit-vector slot — are reclaimed by the owning engine.
  void Cancel();

  /// Seconds from submission to result delivery (0 until completed).
  double ResponseSeconds() const;
  /// CJOIN only: seconds from submission to pipeline registration.
  double SubmissionSeconds() const;

  /// CJOIN only: the query id / bit-vector slot (UINT32_MAX on baseline).
  uint32_t query_id() const;

  /// CJOIN only: underlying handle (nullptr on baseline). For stats and
  /// tests; lifetime owned by the ticket.
  QueryHandle* cjoin_handle() const { return cjoin_.get(); }

  /// The per-query span trace (nullptr when metrics are disabled or the
  /// request predates tracing). Populated incrementally while the query
  /// runs; complete — admission, route, stages, merge — once Wait()
  /// returns. See QueryTrace::Render() for the EXPLAIN ANALYZE-style
  /// text form. Mutable so serving layers can append their own spans
  /// (net streaming) before rendering.
  const std::shared_ptr<obs::QueryTrace>& trace() const { return trace_; }
  void set_trace(std::shared_ptr<obs::QueryTrace> trace) {
    trace_ = std::move(trace);
  }

 private:
  RouteDecision decision_;
  std::shared_ptr<obs::QueryTrace> trace_;
  // Exactly one of the backends is set: CJOIN handle, baseline job,
  // deferred (wait-queued) state, or an immediate result.
  std::unique_ptr<QueryHandle> cjoin_;
  std::shared_ptr<BaselineJob> baseline_;
  std::future<Result<ResultSet>> baseline_future_;
  std::shared_ptr<DeferredQuery> deferred_;
  std::optional<Result<ResultSet>> immediate_;
  std::string label_;        ///< immediate/deferred tickets
  SnapshotId snapshot_ = 0;  ///< immediate tickets
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_QUERY_API_H_
