// Cost-based CJOIN / baseline routing (paper §3.2.3).
//
// "CJOIN becomes yet one more choice for the database query optimizer":
// a star query can either join the always-on shared CJOIN pipeline or run
// on the conventional query-at-a-time executor. The paper's guidance is
// that the shared plan wins under concurrency (its scan and join work are
// amortized over every in-flight query), while a *lone, highly selective*
// query is better served by a private plan whose hash-join pipeline
// short-circuits most fact tuples after one probe.
//
// The Router reproduces that choice with a two-input cost model:
//   1. predicate selectivity, estimated from the dimension predicates by
//      sampling the (memory-resident) dimension tables in the catalog;
//   2. current operator load, the in-flight query count sampled from the
//      star's CJoinOperator.
// Costs are expressed in fact-tuple work units; the cheaper path wins.

#ifndef CJOIN_ENGINE_ROUTER_H_
#define CJOIN_ENGINE_ROUTER_H_

#include <cstdint>
#include <string>

#include "catalog/query_spec.h"

namespace cjoin {

/// Caller-requested routing policy of a QueryRequest.
enum class RoutePolicy {
  kAuto,      ///< let the Router's cost model decide (§3.2.3)
  kCJoin,     ///< force the shared CJOIN pipeline
  kBaseline,  ///< force the conventional query-at-a-time executor
};

/// The engine a query was actually routed to.
enum class RouteChoice { kCJoin, kBaseline };

const char* RoutePolicyName(RoutePolicy policy);
const char* RouteChoiceName(RouteChoice choice);

/// The Router's verdict plus the evidence behind it (surfaced by the
/// shell's EXPLAIN ROUTE and recorded on every QueryTicket).
struct RouteDecision {
  RouteChoice choice = RouteChoice::kCJoin;
  /// True when a non-kAuto policy bypassed the cost model.
  bool forced = false;

  /// Estimated fraction of fact rows satisfying all dimension predicates
  /// (product of per-dimension selectivities).
  double selectivity = 1.0;
  /// Fact-table cardinality used by the model.
  uint64_t fact_rows = 0;
  /// Estimated dimension rows a private baseline plan would hash.
  uint64_t dim_build_rows = 0;
  /// In-flight CJOIN queries at decision time.
  size_t inflight = 0;
  /// Parallel CJOIN pipeline instances (fact-table shards) at decision
  /// time: each shard scans ~fact_rows/shards per lap.
  size_t shards = 1;
  /// Jobs waiting in the baseline pool at decision time.
  size_t baseline_queued = 0;

  // --- Admission state (multi-tenant scheduling) ---------------------------
  /// Tenant the request was priced for (empty = admission not consulted).
  std::string tenant;
  /// The admission gate's verdict for the chosen route ("admitted",
  /// "queued", "shed (<reason>)"); empty when not consulted.
  std::string admission;
  /// CJOIN slots the tenant already holds / its effective slot budget
  /// (0 = unlimited).
  size_t tenant_inflight_cjoin = 0;
  size_t tenant_cjoin_slots = 0;
  /// The tenant's weighted-fair fraction of the baseline pool.
  double tenant_pool_share = 1.0;

  /// Costs in fact-tuple work units (lower wins).
  double cjoin_cost = 0.0;
  double baseline_cost = 0.0;

  /// One-line human-readable rationale.
  std::string reason;

  /// Multi-line EXPLAIN ROUTE rendering.
  std::string ToString() const;
};

/// Cost-model coefficients. The defaults encode the paper's qualitative
/// findings (§6.2): CJOIN's pipeline overhead makes it lose to a private
/// plan for a lone selective query, and its work sharing makes it win as
/// soon as the scan is amortized over concurrent queries.
struct RouterOptions {
  /// Max dimension rows evaluated per predicate when estimating
  /// selectivity (evenly strided sample; dimensions are memory-resident).
  size_t selectivity_sample_rows = 2048;

  /// Per-fact-tuple weight of the shared pipeline (scan + preprocessing +
  /// bit-vector filtering), amortized over in-flight queries + 1.
  double cjoin_tuple_weight = 1.5;
  /// Fixed per-query CJOIN overhead (admission, control tuples, hash-table
  /// bit maintenance), in tuple units.
  double cjoin_fixed_cost = 4096.0;
  /// Distributor + aggregation weight per fact tuple *passing* all
  /// predicates (not shared; each query consumes its own output).
  double route_weight = 1.0;

  /// Baseline probe-pipeline weight per fact tuple, scaled by selectivity:
  /// a selective plan rejects most tuples after its first (most
  /// selective) probe, an unselective one pays every probe and the
  /// aggregation fold.
  double probe_weight = 2.0;

  /// Queueing penalty of the baseline pool: each job already waiting per
  /// worker inflates the baseline cost by this fraction of the query's own
  /// cost (a new job waits roughly queued/workers job-lengths before it
  /// starts). Under multi-tenant scheduling the effective worker count is
  /// scaled by the tenant's weighted-fair pool share.
  double baseline_queue_penalty = 1.0;

  /// Per-tenant CJOIN occupancy penalty: as a tenant approaches its slot
  /// quota, its marginal CJOIN cost inflates by this weight times
  /// occupied/free — steering near-quota tenants toward the baseline
  /// before the admission gate starts shedding them.
  double tenant_slot_penalty = 1.0;
};

/// Load inputs sampled at decision time. inflight is the logical in-flight
/// CJOIN query count of the target (sharded) operator; shards is its
/// pipeline-instance count; baseline_queued/baseline_workers describe the
/// baseline pool's backlog.
struct RouteInputs {
  size_t inflight = 0;
  size_t shards = 1;
  size_t baseline_queued = 0;
  size_t baseline_workers = 1;

  // Per-tenant admission state (AdmissionController::FillRouteInputs).
  /// CJOIN slots the tenant already holds.
  size_t tenant_inflight_cjoin = 0;
  /// The tenant's effective CJOIN slot budget (min of its quota and the
  /// engine-wide bound; 0 = unlimited).
  size_t tenant_cjoin_slots = 0;
  /// The tenant's weighted-fair fraction of the baseline pool (0, 1].
  double tenant_pool_share = 1.0;
  /// Baseline jobs the tenant already has in the system.
  size_t tenant_baseline_queued = 0;
};

class Router {
 public:
  explicit Router(RouterOptions options) : opts_(options) {}
  Router() : Router(RouterOptions{}) {}

  /// Estimates the combined selectivity of `spec`'s dimension predicates
  /// by sampling each referenced dimension table, and (optionally) the
  /// total dimension rows a baseline plan would hash. `spec` must be
  /// normalized.
  double EstimateSelectivity(const StarQuerySpec& spec,
                             uint64_t* dim_build_rows = nullptr) const;

  /// The §3.2.3 optimizer choice for `spec` given the sampled load: the
  /// shared-scan cost divides by the shard count (each pipeline instance
  /// laps only its shard) and amortizes over in-flight queries; the
  /// baseline cost inflates with the pool's queue backlog.
  RouteDecision Decide(const StarQuerySpec& spec,
                       const RouteInputs& inputs) const;

  /// Convenience: unsharded operator, idle baseline pool.
  RouteDecision Decide(const StarQuerySpec& spec, size_t inflight) const {
    RouteInputs in;
    in.inflight = inflight;
    return Decide(spec, in);
  }

  const RouterOptions& options() const { return opts_; }

 private:
  RouterOptions opts_;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_ROUTER_H_
