// Cost-based CJOIN / baseline routing (paper §3.2.3).
//
// "CJOIN becomes yet one more choice for the database query optimizer":
// a star query can either join the always-on shared CJOIN pipeline or run
// on the conventional query-at-a-time executor. The paper's guidance is
// that the shared plan wins under concurrency (its scan and join work are
// amortized over every in-flight query), while a *lone, highly selective*
// query is better served by a private plan whose hash-join pipeline
// short-circuits most fact tuples after one probe.
//
// The Router reproduces that choice with a two-input cost model:
//   1. predicate selectivity, estimated from the dimension predicates by
//      sampling the (memory-resident) dimension tables in the catalog;
//   2. current operator load, the in-flight query count sampled from the
//      star's CJoinOperator.
// Costs are expressed in fact-tuple work units; the cheaper path wins.

#ifndef CJOIN_ENGINE_ROUTER_H_
#define CJOIN_ENGINE_ROUTER_H_

#include <cstdint>
#include <string>

#include "catalog/query_spec.h"

namespace cjoin {

class RouteCalibrator;

/// Caller-requested routing policy of a QueryRequest.
enum class RoutePolicy {
  kAuto,      ///< let the Router's cost model decide (§3.2.3)
  kCJoin,     ///< force the shared CJOIN pipeline
  kBaseline,  ///< force the conventional query-at-a-time executor
};

/// The engine a query was actually routed to.
enum class RouteChoice { kCJoin, kBaseline };

const char* RoutePolicyName(RoutePolicy policy);
const char* RouteChoiceName(RouteChoice choice);

/// The Router's verdict plus the evidence behind it (surfaced by the
/// shell's EXPLAIN ROUTE and recorded on every QueryTicket).
struct RouteDecision {
  RouteChoice choice = RouteChoice::kCJoin;
  /// True when a non-kAuto policy bypassed the cost model.
  bool forced = false;

  /// Estimated fraction of fact rows satisfying all dimension predicates
  /// (product of per-dimension selectivities).
  double selectivity = 1.0;
  /// Fact-table cardinality used by the model.
  uint64_t fact_rows = 0;
  /// Estimated dimension rows a private baseline plan would hash.
  uint64_t dim_build_rows = 0;
  /// In-flight CJOIN queries at decision time.
  size_t inflight = 0;
  /// Parallel CJOIN pipeline instances (fact-table shards) at decision
  /// time: each shard scans ~fact_rows/shards per lap.
  size_t shards = 1;
  /// Jobs waiting in the baseline pool at decision time.
  size_t baseline_queued = 0;

  // --- Admission state (multi-tenant scheduling) ---------------------------
  /// Tenant the request was priced for (empty = admission not consulted).
  std::string tenant;
  /// The admission gate's verdict for the chosen route ("admitted",
  /// "queued", "shed (<reason>)"); empty when not consulted.
  std::string admission;
  /// CJOIN slots the tenant already holds / its effective slot budget
  /// (0 = unlimited).
  size_t tenant_inflight_cjoin = 0;
  size_t tenant_cjoin_slots = 0;
  /// The tenant's weighted-fair fraction of the baseline pool.
  double tenant_pool_share = 1.0;

  /// The costs actually compared (lower wins): static fact-tuple work
  /// units until the calibrator is warm on both routes, fitted seconds
  /// after (see `calibrated`).
  double cjoin_cost = 0.0;
  double baseline_cost = 0.0;

  // --- Calibration evidence (router feedback loop) -------------------------
  /// Static-model costs in fact-tuple units, always populated (equal to
  /// cjoin_cost/baseline_cost while the calibrator is cold).
  double static_cjoin_cost = 0.0;
  double static_baseline_cost = 0.0;
  /// Uninflated work-unit estimates (no queue / scarcity penalties) —
  /// the x the calibrator fits observed service time against.
  double cjoin_work_units = 0.0;
  double baseline_work_units = 0.0;
  /// True when cjoin_cost/baseline_cost are calibrated seconds.
  bool calibrated = false;
  /// True when the exploration policy flipped this decision to the cold
  /// route to gather calibration evidence.
  bool explored = false;

  /// One-line human-readable rationale.
  std::string reason;

  /// Multi-line EXPLAIN ROUTE rendering.
  std::string ToString() const;
};

/// Knobs of the router feedback loop (see engine/route_feedback.h). The
/// calibrator learns per-route service-seconds fits from completed
/// queries; defined here so RouterOptions can embed it by value.
struct CalibrationOptions {
  /// Master switch; off = the purely static router.
  bool enabled = true;
  /// Evidence mass a route needs before its fit is consulted.
  double min_observations = 16.0;
  /// Per-observation decay of the least-squares sufficient statistics
  /// (EWMA over least squares): older queries matter geometrically less.
  double fit_decay = 0.98;
  /// While exactly one route is warm, every Nth Execute()-path decision
  /// flips to the cold route to gather evidence (0 = never explore).
  size_t explore_every = 8;
  /// Evidence-mass multiplier applied by RouteCalibrator::Decay() on a
  /// re-shard / quota change: 0.25 sends a route back below the warm
  /// threshold until fresh queries confirm the fit.
  double stale_decay = 0.25;
};

/// Cost-model coefficients. The defaults encode the paper's qualitative
/// findings (§6.2): CJOIN's pipeline overhead makes it lose to a private
/// plan for a lone selective query, and its work sharing makes it win as
/// soon as the scan is amortized over concurrent queries.
struct RouterOptions {
  /// Max dimension rows evaluated per predicate when estimating
  /// selectivity (evenly strided sample; dimensions are memory-resident).
  size_t selectivity_sample_rows = 2048;

  /// Router feedback loop: observed-latency calibration of these
  /// coefficients (QueryEngine wires the calibrator in).
  CalibrationOptions calibration;

  /// Per-fact-tuple weight of the shared pipeline (scan + preprocessing +
  /// bit-vector filtering), amortized over in-flight queries + 1.
  double cjoin_tuple_weight = 1.5;
  /// Fixed per-query CJOIN overhead (admission, control tuples, hash-table
  /// bit maintenance), in tuple units.
  double cjoin_fixed_cost = 4096.0;
  /// Distributor + aggregation weight per fact tuple *passing* all
  /// predicates (not shared; each query consumes its own output).
  double route_weight = 1.0;

  /// Baseline probe-pipeline weight per fact tuple, scaled by selectivity:
  /// a selective plan rejects most tuples after its first (most
  /// selective) probe, an unselective one pays every probe and the
  /// aggregation fold.
  double probe_weight = 2.0;

  /// Queueing penalty of the baseline pool: each job already waiting per
  /// worker inflates the baseline cost by this fraction of the query's own
  /// cost (a new job waits roughly queued/workers job-lengths before it
  /// starts). Under multi-tenant scheduling the effective worker count is
  /// scaled by the tenant's weighted-fair pool share.
  double baseline_queue_penalty = 1.0;

  /// Per-tenant CJOIN occupancy penalty: as a tenant approaches its slot
  /// quota, its marginal CJOIN cost inflates by this weight times
  /// occupied/free — steering near-quota tenants toward the baseline
  /// before the admission gate starts shedding them.
  double tenant_slot_penalty = 1.0;
};

/// Load inputs sampled at decision time. inflight is the logical in-flight
/// CJOIN query count of the target (sharded) operator; shards is its
/// pipeline-instance count; baseline_queued/baseline_workers describe the
/// baseline pool's backlog.
struct RouteInputs {
  size_t inflight = 0;
  size_t shards = 1;
  size_t baseline_queued = 0;
  size_t baseline_workers = 1;

  // Per-tenant admission state (AdmissionController::SampleForRouting).
  /// CJOIN slots the tenant already holds.
  size_t tenant_inflight_cjoin = 0;
  /// The tenant's effective CJOIN slot budget (min of its quota and the
  /// engine-wide bound; 0 = unlimited).
  size_t tenant_cjoin_slots = 0;
  /// The tenant's weighted-fair fraction of the baseline pool (0, 1].
  double tenant_pool_share = 1.0;
  /// Baseline jobs the tenant already has in the system.
  size_t tenant_baseline_queued = 0;

  /// The admission gate's would-be verdict per route, probed at sample
  /// time (AdmissionController::SampleForRouting): true when a
  /// submission on that route would shed right now — tenant or
  /// engine-wide budget exhausted with no wait-queue room. Vetoes
  /// exploration flips toward a route that would reject the query.
  bool cjoin_would_shed = false;
  bool baseline_would_shed = false;
};

/// Who is asking for the decision. Execute()-path decisions feed the
/// calibrator's counters and may be flipped by the exploration policy;
/// probes (EXPLAIN ROUTE) are side-effect-free, so probing never
/// advances the exploration clock away from the decision Execute()
/// would make.
enum class DecideMode { kExecute, kProbe };

class Router {
 public:
  explicit Router(RouterOptions options) : opts_(options) {}
  Router() : Router(RouterOptions{}) {}

  /// Attaches the feedback calibrator consulted by Decide(). Lifetime is
  /// the caller's problem (the engine owns both); nullptr = static-only.
  void set_calibrator(RouteCalibrator* calibrator) {
    calibrator_ = calibrator;
  }

  /// Estimates the combined selectivity of `spec`'s dimension predicates
  /// by stride-sampling each referenced dimension table *under the
  /// spec's snapshot* (deleted / not-yet-visible rows neither pass nor
  /// count toward the join), and (optionally) the dimension rows a
  /// baseline plan would hash. `spec` must be normalized.
  double EstimateSelectivity(const StarQuerySpec& spec,
                             uint64_t* dim_build_rows = nullptr) const;

  /// The §3.2.3 optimizer choice for `spec` given the sampled load: the
  /// shared-scan cost divides by the shard count (each pipeline instance
  /// laps only its shard) and amortizes over in-flight queries; the
  /// baseline cost inflates with the pool's queue backlog. When the
  /// attached calibrator is warm on both routes the comparison uses
  /// fitted seconds instead of static units (decision.calibrated).
  RouteDecision Decide(const StarQuerySpec& spec, const RouteInputs& inputs,
                       DecideMode mode = DecideMode::kExecute) const;

  /// Convenience: unsharded operator, idle baseline pool.
  RouteDecision Decide(const StarQuerySpec& spec, size_t inflight) const {
    RouteInputs in;
    in.inflight = inflight;
    return Decide(spec, in);
  }

  const RouterOptions& options() const { return opts_; }

 private:
  RouterOptions opts_;
  RouteCalibrator* calibrator_ = nullptr;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_ROUTER_H_
