// The router feedback loop (ROADMAP "dynamic part").
//
// PR 1's Router prices both routes with static hand-tuned coefficients in
// abstract fact-tuple work units. Static weights systematically misroute
// whenever the deployment's real per-tuple costs differ from the
// defaults (different hardware, different predicate complexity, a
// baseline executor that got faster). CJOIN's whole §3.2.3 pitch is
// *predictable* performance — so the router must learn from what it can
// observe: every completed ticket already flows through a completion
// observer carrying its terminal result and timing.
//
// The RouteCalibrator closes that loop. Each kAuto-routed query that
// completes successfully reports one RouteObservation: the route taken,
// the decision-time work-unit estimate, and the observed wall-clock /
// queue-wait split. Per route (CJOIN and baseline — tenant-agnostic, the
// pipeline does not care who asked), an exponentially-decayed
// least-squares fit maps work units to *service seconds*:
//
//     service_seconds  ~=  alpha_route * work_units + beta_route
//
// Once both routes have at least `min_observations` of fresh evidence,
// the Router compares calibrated seconds instead of static units; until
// then it falls back to the static defaults. Because a confidently
// one-sided router would starve the losing route of evidence forever,
// the calibrator also drives a deterministic exploration policy: while
// exactly one route's model is warm, every `explore_every`-th decision
// is flipped to the cold route to gather the missing observations.
//
// Readers (the Decide() hot path) never take a lock: the fitted model is
// published through a seqlock — writers (observations, decays) serialize
// on a mutex, bump the sequence to odd, mutate, bump to even; readers
// retry the copy until they see a stable even sequence. Re-sharding and
// quota changes shift the timing regime under the model, so the engine
// calls Decay() on both, which shrinks the accumulated evidence mass —
// a decayed route drops below the warm threshold and re-learns.

#ifndef CJOIN_ENGINE_ROUTE_FEEDBACK_H_
#define CJOIN_ENGINE_ROUTE_FEEDBACK_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "engine/router.h"

namespace cjoin {

/// One completed kAuto-routed query, reported by the engine's completion
/// observers. Times are seconds; work units are the decision-time
/// estimate for the route actually taken (uninflated by queue / scarcity
/// penalties, which model waiting rather than work).
struct RouteObservation {
  RouteChoice route = RouteChoice::kCJoin;
  /// The Router's uninflated work-unit estimate at decision time.
  double work_units = 0.0;
  /// Submission to result delivery, wall clock.
  double wall_seconds = 0.0;
  /// Time attributable to waiting for resources rather than doing work:
  /// the admission wait-queue residence (deferred CJOIN grants) or the
  /// baseline pool queue wait. Subtracted before fitting.
  double queue_wait_seconds = 0.0;
};

/// One route's fitted model, as published to readers.
struct RouteModelSnapshot {
  /// service_seconds ~= alpha * work_units + beta.
  double alpha = 0.0;
  double beta = 0.0;
  /// Exponentially-decayed evidence mass (decays toward 0 as fits age
  /// through Decay(); grows by 1 per observation).
  double evidence = 0.0;
  /// Raw lifetime observation count.
  uint64_t observations = 0;
  /// True once evidence >= min_observations: the Router consults the fit.
  bool warm = false;
  /// EWMA of |predicted - observed| / observed service time, evaluated
  /// against the pre-update fit (1.0 until the first usable fit).
  double rel_error = 1.0;
  /// Most recent observed service seconds (diagnostics).
  double last_service_seconds = 0.0;

  /// Predicted service seconds for `work_units` under this fit.
  double PredictSeconds(double work_units) const {
    const double s = alpha * work_units + beta;
    return s > 0.0 ? s : 0.0;
  }
};

/// Point-in-time view of the whole calibration state (seqlock-consistent).
struct CalibrationSnapshot {
  RouteModelSnapshot cjoin;
  RouteModelSnapshot baseline;
  /// Decay() invocations (re-shards / quota changes) so far.
  uint64_t decays = 0;

  const RouteModelSnapshot& For(RouteChoice route) const {
    return route == RouteChoice::kCJoin ? cjoin : baseline;
  }
  /// Both routes warm: the Router compares calibrated seconds.
  bool BothWarm() const { return cjoin.warm && baseline.warm; }
};

/// Router-side counters + the calibration state (shell `\calibration`).
struct RouterStats {
  uint64_t decisions_cjoin = 0;
  uint64_t decisions_baseline = 0;
  /// Decisions where calibrated seconds (not static units) were compared.
  uint64_t calibrated_decisions = 0;
  /// Decisions flipped to the cold route by the exploration policy.
  uint64_t explored_decisions = 0;
  uint64_t observations_dropped = 0;  ///< non-positive work/time, ignored
  CalibrationSnapshot calibration;

  std::string ToString() const;
};

class RouteCalibrator {
 public:
  explicit RouteCalibrator(CalibrationOptions options);
  RouteCalibrator() : RouteCalibrator(CalibrationOptions{}) {}

  RouteCalibrator(const RouteCalibrator&) = delete;
  RouteCalibrator& operator=(const RouteCalibrator&) = delete;

  const CalibrationOptions& options() const { return opts_; }

  /// Folds one completed query into the route's fit and republishes the
  /// snapshot. Ignores non-positive work units / service times.
  void Observe(const RouteObservation& obs) EXCLUDES(mu_);

  /// Lock-free consistent copy of the published state (seqlock read).
  CalibrationSnapshot Snapshot() const;

  /// Snapshot plus the decision counters.
  RouterStats Stats() const;

  /// Shrinks both routes' evidence mass — called after re-sharding or a
  /// quota change invalidates the timing regime. The fitted line
  /// survives (it is the best guess available) but the route is
  /// guaranteed to drop out of `warm` (mass is clamped to the threshold
  /// before the `stale_decay` multiply) until fresh observations
  /// rebuild the mass.
  void Decay() EXCLUDES(mu_);

  // --- Decision-path hooks (lock-free; called by Router::Decide) -----------

  /// Deterministic exploration: true when the decision for `preferred`
  /// should flip to the other route because `preferred` is warm, the
  /// other route is cold, and the exploration counter elects this
  /// decision. Only Execute()-mode decisions tick the counter.
  bool ShouldExplore(const CalibrationSnapshot& snap, RouteChoice preferred);

  /// Records an Execute()-mode decision in the counters.
  void CountDecision(const RouteDecision& decision);

 private:
  /// Exponentially-decayed sufficient statistics of least squares of
  /// service seconds (y) on work units (x).
  struct LsqState {
    double n = 0.0;   ///< EWMA-decayed weight of the fit statistics
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    /// Warm-up mass: +1 per observation, shrunk only by Decay() — so
    /// "warm after min_observations" means exactly N queries, while the
    /// fit itself still forgets old regimes geometrically.
    double mass = 0.0;
    uint64_t count = 0;
    double rel_error = 1.0;
    double last_service = 0.0;
  };

  /// Solves the current fit of `state` into `out` (alpha/beta only).
  static void Solve(const LsqState& state, RouteModelSnapshot* out);
  /// Rebuilds snap_ from models_ and republishes it.
  void PublishLocked() REQUIRES(mu_);

  CalibrationOptions opts_;

  Mutex mu_;  ///< serializes writers
  LsqState models_[2] GUARDED_BY(mu_);  ///< [kCJoin, kBaseline]
  uint64_t decays_ GUARDED_BY(mu_) = 0;

  /// Seqlock-published snapshot: odd sequence while a writer mutates,
  /// readers retry until they copy under a stable even sequence. The
  /// payload is an array of relaxed atomic words (doubles bit-cast to
  /// uint64) rather than a plain struct, so the unavoidable read/write
  /// overlap of a seqlock is data-race-free for the memory model (and
  /// ThreadSanitizer) while readers stay lock-free. The atomics also
  /// keep the reader side outside thread-safety analysis's remit: no
  /// GUARDED_BY member is touched without mu_, so Snapshot() needs no
  /// NO_THREAD_SAFETY_ANALYSIS escape.
  static constexpr size_t kModelWords = 7;
  static constexpr size_t kSnapWords = 2 * kModelWords + 1;
  mutable std::atomic<uint32_t> seq_{0};
  std::atomic<uint64_t> words_[kSnapWords] = {};

  std::atomic<uint64_t> decisions_[2] = {};
  std::atomic<uint64_t> calibrated_decisions_{0};
  std::atomic<uint64_t> explored_decisions_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> explore_tick_{0};
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_ROUTE_FEEDBACK_H_
