#include "engine/baseline_pool.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "cjoin/query_runtime.h"
#include "obs/flight_recorder.h"

namespace cjoin {

bool BaselineJob::TryResolve(Result<ResultSet> result) {
  bool expected = false;
  if (!resolved_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return false;
  }
  const int64_t done = QueryRuntime::NowNs();
  completed_ns.store(done, std::memory_order_relaxed);
  if (trace != nullptr) {
    const int64_t submitted = submit_ns.load(std::memory_order_relaxed);
    const int64_t started = start_ns.load(std::memory_order_relaxed);
    if (submitted != 0) {
      // A job resolved while still queued (cancel/deadline/abort) never
      // started: its whole life was queue residence.
      trace->AddSpan(obs::SpanKind::kBaselineQueue, "", submitted,
                     started != 0 ? started : done);
    }
    if (started != 0) {
      trace->AddSpan(obs::SpanKind::kBaselineRun, "", started, done);
    }
  }
  if (obs::MetricsEnabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    const int64_t submitted = submit_ns.load(std::memory_order_relaxed);
    const int64_t started = start_ns.load(std::memory_order_relaxed);
    reg.GetHistogram("baseline_queue_wait_ns",
                     "Baseline pool queue residence")
        ->Record(static_cast<uint64_t>(
            std::max<int64_t>(0, (started != 0 ? started : done) -
                                     submitted)));
    if (started != 0) {
      reg.GetHistogram("baseline_run_ns", "Baseline plan execution time")
          ->Record(static_cast<uint64_t>(std::max<int64_t>(0, done - started)));
    }
  }
  // Quota release (and any other bookkeeping) strictly precedes result
  // visibility, so a caller unblocked by Wait() can immediately resubmit
  // into the freed slot.
  if (on_finished) on_finished(result);
  promise.set_value(std::move(result));
  return true;
}

BaselinePool::BaselinePool(size_t workers, size_t max_queued)
    : max_queued_(max_queued) {
  const size_t n = std::max<size_t>(1, workers);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] {
      obs::RegisterThread("base" + std::to_string(i));
      WorkerLoop();
    });
  }
  sweeper_ = std::thread([this] {
    obs::RegisterThread("sweep");
    SweeperLoop();
  });
}

BaselinePool::~BaselinePool() { Shutdown(); }

Status BaselinePool::Enqueue(std::shared_ptr<BaselineJob> job) {
  job->submit_ns.store(QueryRuntime::NowNs(), std::memory_order_relaxed);
  {
    MutexLock lk(&mu_);
    if (shutdown_) {
      job->TryResolve(Status::Aborted("baseline pool shut down"));
      return Status::Aborted("baseline pool shut down");
    }
    if (max_queued_ != 0 && queue_.size() >= max_queued_) {
      // The caller decides how to surface the rejection; the job's
      // promise stays unresolved (it never entered the pool).
      return Status::ResourceExhausted(
          "baseline pool queue full (" + std::to_string(max_queued_) + ")");
    }
    job->seq = next_seq_++;
    queue_.push_back(job);
    watched_.push_back(std::move(job));
    obs::MetricsRegistry::Global()
        .GetGauge("baseline_pool_queue_depth", "Jobs waiting in the pool")
        ->Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.NotifyAll();
  return Status::OK();
}

void BaselinePool::Shutdown() {
  // `watched_` is the superset: queued AND running jobs. Every unresolved
  // job resolves kAborted now, and the cancel flag interrupts running
  // executors at their next batch boundary so the worker join below is
  // prompt (mirroring CJoinOperator::Stop()).
  std::vector<std::shared_ptr<BaselineJob>> unresolved;
  {
    MutexLock lk(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    queue_.clear();
    unresolved.swap(watched_);
  }
  cv_.NotifyAll();
  for (auto& job : unresolved) {
    job->cancel.store(true, std::memory_order_release);
    job->TryResolve(Status::Aborted("baseline pool shut down"));
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (sweeper_.joinable()) sweeper_.join();
}

size_t BaselinePool::queued() const {
  MutexLock lk(&mu_);
  return queue_.size();
}

std::shared_ptr<BaselineJob> BaselinePool::PopBestLocked() {
  if (queue_.empty()) return nullptr;

  // Start-time fair queueing: pick the queued tenant with the smallest
  // virtual time. A tenant first seen (or returning after idle) starts at
  // the floor — the minimum vtime currently in service — so it competes
  // fairly from now on instead of replaying banked idle credit.
  const std::string* chosen_tenant = nullptr;
  double chosen_vtime = 0.0;
  for (const auto& job : queue_) {
    auto [it, inserted] = vtimes_.try_emplace(job->tenant, vclock_floor_);
    if (it->second < vclock_floor_) it->second = vclock_floor_;
    if (chosen_tenant == nullptr || it->second < chosen_vtime) {
      chosen_tenant = &job->tenant;
      chosen_vtime = it->second;
    }
  }

  // Within the tenant: (priority desc, seq asc) — the pre-tenancy order.
  size_t best = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i]->tenant != *chosen_tenant) continue;
    if (best == queue_.size() ||
        queue_[i]->priority > queue_[best]->priority ||
        (queue_[i]->priority == queue_[best]->priority &&
         queue_[i]->seq < queue_[best]->seq)) {
      best = i;
    }
  }
  std::shared_ptr<BaselineJob> job = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(best));

  // Charge the tenant one job-length of virtual time, scaled by weight,
  // and advance the floor so later arrivals cannot undercut history.
  const double weight = job->fair_weight > 0.0 ? job->fair_weight : 1.0;
  vtimes_[job->tenant] = chosen_vtime + 1.0 / weight;
  vclock_floor_ = std::max(vclock_floor_, chosen_vtime);

  // Every entry sits within one weighted job of the floor (each charge
  // sets vtime = chosen + 1/w with floor >= chosen), so dropping an idle
  // tenant's entry refunds at most one job of credit — harmless, and it
  // keeps unique tenant strings from growing the clock map without
  // bound. Queued tenants keep their clocks.
  if (vtimes_.size() > 256 && vtimes_.size() > 2 * queue_.size()) {
    std::set<std::string> queued_tenants;
    for (const auto& queued_job : queue_) {
      queued_tenants.insert(queued_job->tenant);
    }
    for (auto it = vtimes_.begin(); it != vtimes_.end();) {
      if (queued_tenants.count(it->first) == 0) {
        it = vtimes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return job;
}

void BaselinePool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<BaselineJob> job;
    {
      MutexLock lk(&mu_);
      while (!shutdown_ && queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (shutdown_) return;
      job = PopBestLocked();
      if (job == nullptr) continue;
      obs::MetricsRegistry::Global()
          .GetGauge("baseline_pool_queue_depth", "Jobs waiting in the pool")
          ->Set(static_cast<int64_t>(queue_.size()));
    }

    const int64_t now = QueryRuntime::NowNs();
    job->start_ns.store(now, std::memory_order_relaxed);
    Result<ResultSet> result = [&]() -> Result<ResultSet> {
      if (job->cancel.load(std::memory_order_acquire)) {
        return Status::Cancelled("baseline query cancelled while queued");
      }
      if (job->deadline_ns != 0 && now >= job->deadline_ns) {
        return Status::DeadlineExceeded(
            "baseline query deadline expired while queued");
      }
      QatOptions opts = job->options;
      opts.cancel = &job->cancel;
      opts.deadline_ns = job->deadline_ns;
      return ExecuteStarQuery(job->spec, opts);
    }();
    // The sweeper may have resolved it already (cancel/deadline); first
    // caller wins.
    job->TryResolve(std::move(result));
  }
}

void BaselinePool::SweeperLoop() {
  // Resolves cancelled / deadline-expired jobs promptly — also while they
  // are still queued behind busy workers — at a cadence matching the
  // CJOIN path's per-scan-run interrupt granularity.
  constexpr auto kSweepInterval = std::chrono::milliseconds(5);
  MutexLock lk(&mu_);
  while (!shutdown_) {
    // One sweep interval per iteration; a shutdown notification cuts the
    // nap short (spurious wakeups just sweep early — harmless).
    const auto deadline = std::chrono::steady_clock::now() + kSweepInterval;
    while (!shutdown_ &&
           cv_.WaitUntil(mu_, deadline) != std::cv_status::timeout) {
    }
    if (shutdown_) break;
    const int64_t now = QueryRuntime::NowNs();
    for (size_t i = 0; i < watched_.size();) {
      BaselineJob& job = *watched_[i];
      Status terminal = Status::OK();
      if (job.cancel.load(std::memory_order_acquire)) {
        terminal = Status::Cancelled("baseline query cancelled");
      } else if (job.deadline_ns != 0 && now >= job.deadline_ns) {
        terminal = Status::DeadlineExceeded(
            "baseline query deadline expired");
      }
      bool done = false;
      if (!terminal.ok()) {
        // Signal the executor too (deadline case), then resolve.
        job.cancel.store(true, std::memory_order_release);
        job.TryResolve(std::move(terminal));
        done = true;
      } else if (job.completed_ns.load(std::memory_order_relaxed) != 0) {
        done = true;  // worker finished it; stop watching
      }
      if (done) {
        watched_[i] = std::move(watched_.back());
        watched_.pop_back();
      } else {
        ++i;
      }
    }
  }
}

}  // namespace cjoin
