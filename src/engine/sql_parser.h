// SQL-subset parser for star queries (the template of paper §2.1).
//
// Parses the star-query dialect used throughout the paper and the SSB
// benchmark into a bound StarQuerySpec:
//
//   SELECT [cols and aggregates] FROM fact, dim, ...
//   WHERE <fk = pk joins> AND <per-table predicates> [GROUP BY cols]
//
// Supported predicate forms: comparisons (=, <>, <, <=, >, >=) between
// column/literal arithmetic expressions, BETWEEN, IN (...), LIKE
// 'prefix%', AND/OR/NOT with parentheses. Each non-join conjunct must
// reference columns of exactly one table (the star-query restriction:
// sigma_cj references solely D_dj's tuple variable).
//
// Example:
//   SELECT d_year, SUM(lo_revenue - lo_supplycost) AS profit
//   FROM lineorder, date, customer
//   WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
//     AND c_region = 'AMERICA' AND d_year >= 1997
//   GROUP BY d_year

#ifndef CJOIN_ENGINE_SQL_PARSER_H_
#define CJOIN_ENGINE_SQL_PARSER_H_

#include <string>
#include <string_view>

#include "catalog/query_spec.h"
#include "catalog/star_schema.h"
#include "common/status.h"

namespace cjoin {

/// Parses `sql` against `star`, returning a normalized StarQuerySpec.
/// Table names in FROM must be the fact table and/or dimension tables of
/// `star`; column names must be unambiguous across the referenced tables
/// (true for SSB's prefixed names).
Result<StarQuerySpec> ParseStarQuery(const StarSchema& star,
                                     std::string_view sql);

}  // namespace cjoin

#endif  // CJOIN_ENGINE_SQL_PARSER_H_
