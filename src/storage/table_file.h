// Binary persistence for tables.
//
// Format (little-endian):
//   magic "CJTB" | version u32 | name | schema | num_partitions u32 |
//   rows_per_page u64 | per partition: row count u64 followed by raw row
//   slots (header + payload), page-packed.
//
// Strings are length-prefixed (u32). This is a utility substrate for the
// examples (generate SSB data once, reuse across runs); the engine itself
// operates on in-memory Tables.

#ifndef CJOIN_STORAGE_TABLE_FILE_H_
#define CJOIN_STORAGE_TABLE_FILE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace cjoin {

/// Writes `table` to `path`, overwriting any existing file.
Status SaveTable(const Table& table, const std::string& path);

/// Reads a table previously written by SaveTable.
Result<std::unique_ptr<Table>> LoadTable(const std::string& path);

}  // namespace cjoin

#endif  // CJOIN_STORAGE_TABLE_FILE_H_
