#include "storage/sim_disk.h"

#include <algorithm>
#include <thread>

namespace cjoin {

void SimDisk::Acquire(uint64_t reader_id, uint64_t bytes) {
  if (!opts_.enabled) return;
  Clock::time_point wake;
  {
    MutexLock lk(&mu_);
    const Clock::time_point now = Clock::now();
    if (!started_) {
      device_free_ = now;
      started_ = true;
    }
    // The transfer starts when the device is free and the request has
    // arrived, whichever is later.
    Clock::time_point start = std::max(device_free_, now);
    std::chrono::nanoseconds service(static_cast<int64_t>(
        1e9 * static_cast<double>(bytes) / opts_.bandwidth_bytes_per_sec));
    if (reader_id != last_reader_) {
      service += std::chrono::duration_cast<std::chrono::nanoseconds>(
          opts_.seek_time);
      ++seeks_;
      last_reader_ = reader_id;
    }
    device_free_ = start + service;
    busy_seconds_ += std::chrono::duration<double>(service).count();
    wake = device_free_;
  }
  std::this_thread::sleep_until(wake);
}

double SimDisk::BusySeconds() const {
  MutexLock lk(&mu_);
  return busy_seconds_;
}

uint64_t SimDisk::SeekCount() const {
  MutexLock lk(&mu_);
  return seeks_;
}

}  // namespace cjoin
