// Simulated shared disk (substitution substrate — see DESIGN.md §2).
//
// The paper's evaluation ran on a 100 GB fact table behind a RAID array:
// the decisive effect for the query-at-a-time baselines is that n private
// scans share one disk, so (a) each scan gets ~1/n of the sequential
// bandwidth and (b) interleaved readers turn sequential access into
// seek-bound access. At reproduction scale the data fits in RAM, which
// would erase that effect, so SimDisk restores it: a single-server disk
// model that serializes transfer time and charges a seek penalty whenever
// the disk switches between readers.
//
// Every scan calls Acquire(reader, bytes) before consuming a page. The
// model computes when that transfer would complete on the simulated device
// and sleeps the caller until then. One shared scan (CJOIN) pays the seek
// penalty almost never; n private scans pay it constantly — exactly the
// behaviour of §6's testbed.

#ifndef CJOIN_STORAGE_SIM_DISK_H_
#define CJOIN_STORAGE_SIM_DISK_H_

#include <chrono>
#include <cstdint>

#include "common/mutex.h"

namespace cjoin {

/// Token-bucket style disk model shared by all concurrent scans.
/// Thread-safe.
class SimDisk {
 public:
  struct Options {
    /// Sequential transfer bandwidth of the simulated device.
    double bandwidth_bytes_per_sec = 400.0 * 1024 * 1024;
    /// Positioning cost charged when the device switches readers.
    std::chrono::microseconds seek_time = std::chrono::microseconds(1500);
    /// When false, Acquire() is a no-op (memory-resident mode).
    bool enabled = true;
  };

  explicit SimDisk(Options options) : opts_(options) {}
  SimDisk() : SimDisk(Options{}) {}

  /// Blocks the caller until the simulated device has transferred `bytes`
  /// on behalf of `reader_id`. Distinct readers contend; a reader that has
  /// the device "positioned" (it was the last user) pays no seek.
  void Acquire(uint64_t reader_id, uint64_t bytes) EXCLUDES(mu_);

  /// Total simulated busy time accumulated, in seconds.
  double BusySeconds() const EXCLUDES(mu_);

  /// Number of reader switches (seeks) charged so far.
  uint64_t SeekCount() const EXCLUDES(mu_);

  const Options& options() const { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  Options opts_;
  mutable Mutex mu_;
  /// When the device next becomes idle.
  Clock::time_point device_free_ GUARDED_BY(mu_){};
  uint64_t last_reader_ GUARDED_BY(mu_) = ~uint64_t{0};
  uint64_t seeks_ GUARDED_BY(mu_) = 0;
  double busy_seconds_ GUARDED_BY(mu_) = 0.0;
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace cjoin

#endif  // CJOIN_STORAGE_SIM_DISK_H_
