// Table schemas and raw-row field access.
//
// Rows are fixed-width byte records laid out column-after-column with
// natural alignment (int64/double fields 8-aligned, int32 4-aligned, char
// fields byte-aligned and NUL-padded). A Schema owns the layout and is the
// only component that interprets row bytes.

#ifndef CJOIN_STORAGE_SCHEMA_H_
#define CJOIN_STORAGE_SCHEMA_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/types.h"

namespace cjoin {

/// One column of a schema.
struct Column {
  std::string name;
  DataType type = DataType::kInt32;
  /// Declared length for kChar columns; 0 otherwise.
  uint32_t char_len = 0;
  /// Byte offset of this column within the row payload (set by Schema).
  uint32_t offset = 0;

  size_t width() const { return TypeSize(type, char_len); }
};

/// An ordered set of columns plus the derived row layout.
class Schema {
 public:
  Schema() = default;

  /// Convenience builder: Schema({{"a", DataType::kInt32}, ...}).
  Schema& AddInt32(std::string name);
  Schema& AddInt64(std::string name);
  Schema& AddDouble(std::string name);
  Schema& AddChar(std::string name, uint32_t len);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Total payload bytes per row (includes alignment padding, rounded up
  /// to 8 so consecutive rows stay aligned).
  size_t row_size() const { return row_size_; }

  /// Index of the column with `name`, or -1 if absent.
  int ColumnIndex(std::string_view name) const;

  /// Result-returning variant of ColumnIndex.
  Result<size_t> FindColumn(std::string_view name) const;

  // --- Typed field access on raw row payloads -----------------------------
  // The caller is responsible for passing a column index of the matching
  // type; these are unchecked on release builds (hot path).

  int32_t GetInt32(const uint8_t* row, size_t col) const {
    int32_t v;
    std::memcpy(&v, row + columns_[col].offset, sizeof(v));
    return v;
  }
  int64_t GetInt64(const uint8_t* row, size_t col) const {
    int64_t v;
    std::memcpy(&v, row + columns_[col].offset, sizeof(v));
    return v;
  }
  double GetDouble(const uint8_t* row, size_t col) const {
    double v;
    std::memcpy(&v, row + columns_[col].offset, sizeof(v));
    return v;
  }
  /// Returns the char field trimmed at its first NUL.
  std::string_view GetChar(const uint8_t* row, size_t col) const {
    const char* p =
        reinterpret_cast<const char*>(row + columns_[col].offset);
    const size_t cap = columns_[col].char_len;
    size_t len = 0;
    while (len < cap && p[len] != '\0') ++len;
    return std::string_view(p, len);
  }

  /// Reads an integer-typed column (kInt32 or kInt64) widened to int64.
  /// Used for join keys, whose physical type varies by table.
  int64_t GetIntAny(const uint8_t* row, size_t col) const {
    return columns_[col].type == DataType::kInt32
               ? static_cast<int64_t>(GetInt32(row, col))
               : GetInt64(row, col);
  }

  void SetInt32(uint8_t* row, size_t col, int32_t v) const {
    std::memcpy(row + columns_[col].offset, &v, sizeof(v));
  }
  void SetInt64(uint8_t* row, size_t col, int64_t v) const {
    std::memcpy(row + columns_[col].offset, &v, sizeof(v));
  }
  void SetDouble(uint8_t* row, size_t col, double v) const {
    std::memcpy(row + columns_[col].offset, &v, sizeof(v));
  }
  /// Copies `v` into the char field, truncating or NUL-padding to the
  /// declared length.
  void SetChar(uint8_t* row, size_t col, std::string_view v) const {
    const size_t cap = columns_[col].char_len;
    uint8_t* dst = row + columns_[col].offset;
    const size_t n = v.size() < cap ? v.size() : cap;
    std::memcpy(dst, v.data(), n);
    std::memset(dst + n, 0, cap - n);
  }

  /// Human-readable description, e.g. "(a INT32, b CHAR(10))".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  void Append(Column col);

  std::vector<Column> columns_;
  size_t row_size_ = 0;
};

}  // namespace cjoin

#endif  // CJOIN_STORAGE_SCHEMA_H_
