#include "storage/table_file.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

namespace cjoin {

namespace {

constexpr char kMagic[4] = {'C', 'J', 'T', 'B'};
constexpr uint32_t kVersion = 1;

class FileWriter {
 public:
  explicit FileWriter(FILE* f) : f_(f) {}

  bool Write(const void* data, size_t n) {
    return fwrite(data, 1, n, f_) == n;
  }
  bool WriteU32(uint32_t v) { return Write(&v, sizeof(v)); }
  bool WriteU64(uint64_t v) { return Write(&v, sizeof(v)); }
  bool WriteString(const std::string& s) {
    return WriteU32(static_cast<uint32_t>(s.size())) &&
           Write(s.data(), s.size());
  }

 private:
  FILE* f_;
};

class FileReader {
 public:
  explicit FileReader(FILE* f) : f_(f) {}

  bool Read(void* data, size_t n) { return fread(data, 1, n, f_) == n; }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadString(std::string* s) {
    uint32_t n;
    if (!ReadU32(&n)) return false;
    if (n > (1u << 20)) return false;  // sanity bound on string length
    s->resize(n);
    return n == 0 || Read(s->data(), n);
  }

 private:
  FILE* f_;
};

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) fclose(f);
  }
};
using UniqueFile = std::unique_ptr<FILE, FileCloser>;

}  // namespace

Status SaveTable(const Table& table, const std::string& path) {
  UniqueFile file(fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  FileWriter w(file.get());
  bool ok = w.Write(kMagic, 4) && w.WriteU32(kVersion) &&
            w.WriteString(table.name());

  const Schema& schema = table.schema();
  ok = ok && w.WriteU32(static_cast<uint32_t>(schema.num_columns()));
  for (size_t c = 0; ok && c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    ok = w.WriteString(col.name) &&
         w.WriteU32(static_cast<uint32_t>(col.type)) &&
         w.WriteU32(col.char_len);
  }

  ok = ok && w.WriteU32(table.num_partitions()) &&
       w.WriteU64(table.rows_per_page());

  const size_t stride = table.row_stride();
  for (uint32_t p = 0; ok && p < table.num_partitions(); ++p) {
    ok = w.WriteU64(table.PartitionRows(p));
    for (size_t page = 0; ok && page < table.NumPages(p); ++page) {
      ok = w.Write(table.PageData(p, page), table.PageRows(p, page) * stride);
    }
  }
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<std::unique_ptr<Table>> LoadTable(const std::string& path) {
  UniqueFile file(fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  FileReader r(file.get());

  char magic[4];
  uint32_t version;
  std::string name;
  if (!r.Read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError("bad magic in " + path);
  }
  if (!r.ReadU32(&version) || version != kVersion) {
    return Status::IOError("unsupported table file version in " + path);
  }
  if (!r.ReadString(&name)) return Status::IOError("truncated header");

  uint32_t ncols;
  if (!r.ReadU32(&ncols) || ncols > 4096) {
    return Status::IOError("bad column count");
  }
  Schema schema;
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string col_name;
    uint32_t type_raw, char_len;
    if (!r.ReadString(&col_name) || !r.ReadU32(&type_raw) ||
        !r.ReadU32(&char_len)) {
      return Status::IOError("truncated schema");
    }
    switch (static_cast<DataType>(type_raw)) {
      case DataType::kInt32:
        schema.AddInt32(std::move(col_name));
        break;
      case DataType::kInt64:
        schema.AddInt64(std::move(col_name));
        break;
      case DataType::kDouble:
        schema.AddDouble(std::move(col_name));
        break;
      case DataType::kChar:
        schema.AddChar(std::move(col_name), char_len);
        break;
      default:
        return Status::IOError("unknown column type");
    }
  }

  uint32_t nparts;
  uint64_t rows_per_page;
  if (!r.ReadU32(&nparts) || !r.ReadU64(&rows_per_page) || nparts == 0 ||
      rows_per_page == 0) {
    return Status::IOError("bad partition header");
  }

  Table::Options opts;
  opts.rows_per_page = rows_per_page;
  opts.num_partitions = nparts;
  auto table = std::make_unique<Table>(name, std::move(schema), opts);

  const size_t stride = table->row_stride();
  std::vector<uint8_t> slot(stride);
  for (uint32_t p = 0; p < nparts; ++p) {
    uint64_t nrows;
    if (!r.ReadU64(&nrows)) return Status::IOError("truncated partition");
    for (uint64_t i = 0; i < nrows; ++i) {
      if (!r.Read(slot.data(), stride)) {
        return Status::IOError("truncated rows");
      }
      RowHeader hdr;
      std::memcpy(&hdr, slot.data(), sizeof(hdr));
      RowId id;
      uint8_t* dst = table->AppendUninitialized(p, hdr.xmin, &id);
      std::memcpy(dst, slot.data() + sizeof(RowHeader),
                  stride - sizeof(RowHeader));
      if (hdr.xmax != kMaxSnapshot) {
        CJOIN_RETURN_IF_ERROR(table->MarkDeleted(id, hdr.xmax));
      }
    }
  }
  return table;
}

}  // namespace cjoin
