#include "storage/table.h"

#include <cassert>
#include <cstring>

namespace cjoin {

Table::Table(std::string name, Schema schema, Options options)
    : name_(std::move(name)), schema_(std::move(schema)), opts_(options) {
  if (opts_.rows_per_page == 0) opts_.rows_per_page = 1;
  if (opts_.num_partitions == 0) opts_.num_partitions = 1;
  partitions_.reserve(opts_.num_partitions);
  for (uint32_t p = 0; p < opts_.num_partitions; ++p) {
    auto part = std::make_unique<Partition>();
    auto dir = std::make_unique<PageDir>();
    part->dir.store(dir.get(), std::memory_order_relaxed);
    part->dir_history.push_back(std::move(dir));
    partitions_.push_back(std::move(part));
  }
}

uint64_t Table::NumRows() const {
  uint64_t n = 0;
  for (const auto& p : partitions_) {
    n += p->num_rows.load(std::memory_order_acquire);
  }
  return n;
}

uint8_t* Table::AppendUninitialized(uint32_t p, SnapshotId xmin,
                                    RowId* id_out) {
  assert(p < partitions_.size());
  Partition& part = *partitions_[p];
  const size_t stride = row_stride();
  const uint64_t row_index = part.num_rows.load(std::memory_order_relaxed);
  const size_t in_page = row_index % opts_.rows_per_page;
  if (in_page == 0) {
    // New page: publish a copied directory (readers keep using the old
    // one until the release store below).
    part.pages.emplace_back(new uint8_t[stride * opts_.rows_per_page]);
    const PageDir* old_dir = part.dir.load(std::memory_order_relaxed);
    auto new_dir = std::make_unique<PageDir>();
    new_dir->pages = old_dir->pages;
    new_dir->pages.push_back(part.pages.back().get());
    part.dir.store(new_dir.get(), std::memory_order_release);
    part.dir_history.push_back(std::move(new_dir));
  }
  uint8_t* slot = part.dir.load(std::memory_order_relaxed)->pages.back() +
                  in_page * stride;
  RowHeader hdr;
  hdr.xmin = xmin;
  hdr.xmax = kMaxSnapshot;
  std::memcpy(slot, &hdr, sizeof(hdr));
  if (id_out != nullptr) {
    id_out->partition = p;
    id_out->index = row_index;
  }
  // Publish the row count; rows below this index are fully headered.
  part.num_rows.store(row_index + 1, std::memory_order_release);
  return slot + sizeof(RowHeader);
}

RowId Table::AppendRow(const void* payload, uint32_t p, SnapshotId xmin) {
  assert(p < partitions_.size());
  Partition& part = *partitions_[p];
  const size_t stride = row_stride();
  const uint64_t row_index = part.num_rows.load(std::memory_order_relaxed);
  const size_t in_page = row_index % opts_.rows_per_page;
  if (in_page == 0) {
    part.pages.emplace_back(new uint8_t[stride * opts_.rows_per_page]);
    const PageDir* old_dir = part.dir.load(std::memory_order_relaxed);
    auto new_dir = std::make_unique<PageDir>();
    new_dir->pages = old_dir->pages;
    new_dir->pages.push_back(part.pages.back().get());
    part.dir.store(new_dir.get(), std::memory_order_release);
    part.dir_history.push_back(std::move(new_dir));
  }
  uint8_t* slot = part.dir.load(std::memory_order_relaxed)->pages.back() +
                  in_page * stride;
  RowHeader hdr;
  hdr.xmin = xmin;
  hdr.xmax = kMaxSnapshot;
  std::memcpy(slot, &hdr, sizeof(hdr));
  std::memcpy(slot + sizeof(RowHeader), payload, schema_.row_size());
  // The row is fully written before the count release: readers that see
  // the new count see complete bytes.
  part.num_rows.store(row_index + 1, std::memory_order_release);
  return RowId{p, row_index};
}

uint8_t* Table::RowSlot(RowId id) const {
  assert(id.partition < partitions_.size());
  const Partition& part = *partitions_[id.partition];
  assert(id.index < part.num_rows.load(std::memory_order_acquire));
  const size_t page = id.index / opts_.rows_per_page;
  const size_t in_page = id.index % opts_.rows_per_page;
  const PageDir* dir = part.dir.load(std::memory_order_acquire);
  return dir->pages[page] + in_page * row_stride();
}

const uint8_t* Table::RowPayload(RowId id) const {
  return RowSlot(id) + sizeof(RowHeader);
}

uint8_t* Table::MutableRowPayload(RowId id) {
  return RowSlot(id) + sizeof(RowHeader);
}

const RowHeader* Table::Header(RowId id) const {
  return reinterpret_cast<const RowHeader*>(RowSlot(id));
}

Status Table::MarkDeleted(RowId id, SnapshotId xmax) {
  RowHeader* hdr = reinterpret_cast<RowHeader*>(RowSlot(id));
  if (xmax <= hdr->xmin) {
    return Status::InvalidArgument("xmax must be greater than xmin");
  }
  std::atomic_ref<SnapshotId> x(hdr->xmax);
  SnapshotId expected = kMaxSnapshot;
  if (!x.compare_exchange_strong(expected, xmax,
                                 std::memory_order_release)) {
    return Status::FailedPrecondition("row already deleted");
  }
  return Status::OK();
}

size_t Table::NumPages(uint32_t p) const {
  const uint64_t rows =
      partitions_[p]->num_rows.load(std::memory_order_acquire);
  return static_cast<size_t>((rows + opts_.rows_per_page - 1) /
                             opts_.rows_per_page);
}

size_t Table::PageRows(uint32_t p, size_t page) const {
  const uint64_t rows =
      partitions_[p]->num_rows.load(std::memory_order_acquire);
  const size_t pages = NumPages(p);
  assert(page < pages);
  if (page + 1 < pages) return opts_.rows_per_page;
  const size_t rem = rows % opts_.rows_per_page;
  return rem == 0 ? opts_.rows_per_page : rem;
}

}  // namespace cjoin
