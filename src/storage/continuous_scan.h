// The "always-on" continuous scan (paper §3.1).
//
// CJOIN receives its input from a continuous scan of the fact table: when
// the scan reaches the end it wraps around, turning the fact table into an
// endless stream. Queries latch on at an arbitrary position and complete
// when the scan returns to that position (§3.3), so the scan must
// (correctness property 1, §3.3.3) return fact tuples in the same order on
// every lap.
//
// The scan iterates partitions in order and rows within each partition in
// order, delivering *runs*: maximal row ranges within one page. It also
// emits explicit pass-start / pass-end events at partition boundaries;
// the Preprocessor uses these to implement per-query completion
// checkpoints, including the partition-limited early termination of §5.
//
// Rows appended to the table while a lap is in flight are not observed
// until the next lap: partition sizes are frozen at each lap start, which
// keeps the per-lap row universe stable (appended rows are invisible to
// older snapshots anyway under MVCC).

#ifndef CJOIN_STORAGE_CONTINUOUS_SCAN_H_
#define CJOIN_STORAGE_CONTINUOUS_SCAN_H_

#include <cstdint>
#include <vector>

#include "storage/sim_disk.h"
#include "storage/table.h"

namespace cjoin {

/// One step of the continuous scan: either a run of rows or a
/// partition-pass boundary event.
struct ScanEvent {
  enum class Kind {
    kRows,       ///< `base/count/...` describe a run of consecutive rows
    kPassStart,  ///< the scan is entering partition `partition`, pass `lap`
    kPassEnd,    ///< the scan finished partition `partition`, pass `lap`
  };

  Kind kind = Kind::kRows;
  uint32_t partition = 0;
  /// Pass number of this partition (1 on the first visit).
  uint64_t lap = 0;

  // --- kRows only ---
  /// First row slot (RowHeader followed by payload). Rows are
  /// `stride` bytes apart.
  const uint8_t* base = nullptr;
  size_t count = 0;
  /// Index (within the partition) of the first row of the run.
  uint64_t first_index = 0;
  /// Frozen size of this partition for the current table lap.
  uint64_t partition_size = 0;
  /// Global tick (total rows delivered before this run) of the first row.
  uint64_t first_tick = 0;
};

/// Endless cyclic scan over a Table. Single-consumer; the CJOIN
/// Preprocessor is the only caller.
class ContinuousScan {
 public:
  struct Options {
    /// Maximum rows per kRows event (also the unit of SimDisk charging).
    size_t max_run_rows = 1024;
    /// Optional shared-disk model; nullptr scans at memory speed.
    SimDisk* disk = nullptr;
    /// Identifies this scan to the disk model.
    uint64_t reader_id = 0;
  };

  ContinuousScan(const Table& table, Options options);
  explicit ContinuousScan(const Table& table)
      : ContinuousScan(table, Options{}) {}

  /// Produces the next event. Returns false only if the table has no rows
  /// at all (empty tables produce no stream).
  bool Next(ScanEvent* event);

  /// Current position: the partition/index of the next row to deliver.
  uint32_t current_partition() const { return part_; }
  uint64_t current_index() const { return index_; }
  /// Global tick of the next row to deliver.
  uint64_t tick() const { return tick_; }
  /// Number of completed passes of partition p (i.e. lap counter).
  uint64_t partition_lap(uint32_t p) const { return laps_[p]; }
  /// Frozen size of partition p for the current table lap.
  uint64_t frozen_size(uint32_t p) const { return frozen_sizes_[p]; }
  /// Sum of frozen partition sizes (rows per full lap).
  uint64_t frozen_total() const { return frozen_total_; }
  /// Number of completed full table laps.
  uint64_t table_laps() const { return table_laps_; }
  /// True iff the kPassStart event of the current partition pass has been
  /// delivered (i.e. partition_lap(current_partition()) names the pass in
  /// progress rather than the previous one).
  bool pass_started() const { return !need_pass_start_; }

  /// Re-freezes partition sizes at the current position, making rows
  /// appended since the last lap freeze immediately scannable. Only safe
  /// when no query is mid-cycle (the caller must guarantee it — the
  /// Preprocessor invokes this while quiescent); sizes only grow, so
  /// indices remain stable.
  void RefreezeNow() { FreezeSizes(); }

  const Table& table() const { return table_; }

 private:
  /// Re-freezes partition sizes at a table lap boundary.
  void FreezeSizes();
  /// Advances part_ past empty partitions; wraps the table lap.
  /// Returns false if all partitions are empty.
  bool SkipEmptyPartitions();

  const Table& table_;
  Options opts_;
  std::vector<uint64_t> frozen_sizes_;
  uint64_t frozen_total_ = 0;
  std::vector<uint64_t> laps_;

  uint32_t part_ = 0;
  uint64_t index_ = 0;
  uint64_t tick_ = 0;
  uint64_t table_laps_ = 0;
  bool need_pass_start_ = true;
};

/// One-shot sequential scan used by the query-at-a-time baseline: visits
/// every row of the table exactly once (no wrap), charging the optional
/// disk model per run.
class SinglePassScan {
 public:
  /// Scans all partitions, or only `partitions` when non-empty (partition
  /// pruning, §5).
  SinglePassScan(const Table& table, ContinuousScan::Options options = {},
                 std::vector<uint32_t> partitions = {});

  /// Next run of rows; false when the table is exhausted.
  bool Next(ScanEvent* event);

 private:
  const Table& table_;
  ContinuousScan::Options opts_;
  /// Partitions to visit, in order.
  std::vector<uint32_t> parts_;
  size_t part_cursor_ = 0;
  uint64_t index_ = 0;
};

}  // namespace cjoin

#endif  // CJOIN_STORAGE_CONTINUOUS_SCAN_H_
