// Paged, partitioned, multi-versioned row store.
//
// A Table stores fixed-width rows in pages, optionally divided into range
// partitions (paper §5 "Fact Table Partitioning"). Every row carries an
// 8-byte MVCC header (xmin/xmax snapshot ids) so a mixed query/update
// workload under snapshot isolation can share one continuous scan
// (paper §3.5): the scan exposes the version information and per-query
// visibility is evaluated as a virtual fact-table predicate.
//
// Concurrency contract: ONE writer (the engine serializes updates) and
// any number of readers. Readers never block: the page directory is
// copy-on-grow (RCU-style — a new immutable directory is published
// atomically when a page is added), row counts are released after the row
// bytes are written, and xmax deletion marks are atomic stores. A reader
// that captured row count N sees fully-written rows for all indices < N.

#ifndef CJOIN_STORAGE_TABLE_H_
#define CJOIN_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace cjoin {

/// Snapshot identifier. Snapshot 0 is "the beginning of time"; rows loaded
/// in bulk are created at snapshot 0 and visible to everyone.
using SnapshotId = uint32_t;
inline constexpr SnapshotId kMaxSnapshot =
    std::numeric_limits<SnapshotId>::max();

/// Per-row version header preceding the payload. xmax may be written
/// concurrently with readers, so accessors go through std::atomic_ref.
struct RowHeader {
  SnapshotId xmin = 0;            ///< snapshot that created the row
  SnapshotId xmax = kMaxSnapshot; ///< snapshot that deleted it (exclusive)

  SnapshotId LoadXmax() const {
    std::atomic_ref<const SnapshotId> r(xmax);
    return r.load(std::memory_order_acquire);
  }

  /// True iff the row is visible to a reader at `snap`.
  bool VisibleAt(SnapshotId snap) const {
    return xmin <= snap && snap < LoadXmax();
  }
  /// True iff the row is visible to every possible reader (fast path).
  bool VisibleToAll() const {
    return xmin == 0 && LoadXmax() == kMaxSnapshot;
  }
};
static_assert(sizeof(RowHeader) == 8);

/// Location of a row: partition index and row index within the partition.
struct RowId {
  uint32_t partition = 0;
  uint64_t index = 0;

  bool operator==(const RowId&) const = default;
};

/// Fixed-width row store with pages, partitions, and MVCC headers.
class Table {
 public:
  struct Options {
    /// Rows per page; pages are the unit of file I/O and scan batching.
    size_t rows_per_page = 4096;
    /// Number of range partitions (>= 1).
    uint32_t num_partitions = 1;
  };

  Table(std::string name, Schema schema, Options options);
  Table(std::string name, Schema schema)
      : Table(std::move(name), std::move(schema), Options{}) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t rows_per_page() const { return opts_.rows_per_page; }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partitions_.size());
  }

  /// Bytes per stored row: header + payload.
  size_t row_stride() const { return sizeof(RowHeader) + schema_.row_size(); }

  uint64_t NumRows() const;
  uint64_t PartitionRows(uint32_t p) const {
    return partitions_[p]->num_rows.load(std::memory_order_acquire);
  }

  /// Appends a row whose payload bytes are `payload` (schema().row_size()
  /// bytes) into partition `p`, created at snapshot `xmin`.
  /// Returns its RowId. Single writer at a time.
  RowId AppendRow(const void* payload, uint32_t p = 0, SnapshotId xmin = 0);

  /// Reserves space for a row and returns a writable payload pointer; the
  /// caller fills the fields through the schema setters. The row becomes
  /// visible to readers (counted in PartitionRows) immediately; callers
  /// that interleave appends with concurrent scans should fill the
  /// payload in a scratch buffer and use AppendRow instead.
  uint8_t* AppendUninitialized(uint32_t p = 0, SnapshotId xmin = 0,
                               RowId* id_out = nullptr);

  /// Payload pointer of a row.
  const uint8_t* RowPayload(RowId id) const;
  uint8_t* MutableRowPayload(RowId id);

  /// MVCC header of a row.
  const RowHeader* Header(RowId id) const;

  /// Marks the row deleted as of snapshot `xmax` (it stays visible to
  /// snapshots < xmax). Atomic with respect to concurrent readers.
  /// Fails if the row was already deleted earlier.
  Status MarkDeleted(RowId id, SnapshotId xmax);

  // --- Page-level access (used by scans and file persistence) -------------

  /// Number of pages in partition p (consistent with PartitionRows when
  /// the caller reads PartitionRows first).
  size_t NumPages(uint32_t p) const;

  /// Number of rows stored in page `page` of partition `p`.
  size_t PageRows(uint32_t p, size_t page) const;

  /// Pointer to the first stored row (header) of the page. Safe against
  /// concurrent appends (RCU page directory).
  const uint8_t* PageData(uint32_t p, size_t page) const {
    const PageDir* dir =
        partitions_[p]->dir.load(std::memory_order_acquire);
    return dir->pages[page];
  }

 private:
  /// Immutable snapshot of a partition's page pointers.
  struct PageDir {
    std::vector<uint8_t*> pages;
  };

  struct Partition {
    /// Current directory (grows by copy; old ones kept in `dir_history`).
    std::atomic<PageDir*> dir{nullptr};
    std::vector<std::unique_ptr<PageDir>> dir_history;
    /// Owns the page storage.
    std::vector<std::unique_ptr<uint8_t[]>> pages;
    std::atomic<uint64_t> num_rows{0};
  };

  uint8_t* RowSlot(RowId id) const;

  std::string name_;
  Schema schema_;
  Options opts_;
  std::vector<std::unique_ptr<Partition>> partitions_;
};

}  // namespace cjoin

#endif  // CJOIN_STORAGE_TABLE_H_
