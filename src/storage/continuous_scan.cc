#include "storage/continuous_scan.h"

#include <algorithm>
#include <cassert>

namespace cjoin {

ContinuousScan::ContinuousScan(const Table& table, Options options)
    : table_(table), opts_(options) {
  if (opts_.max_run_rows == 0) opts_.max_run_rows = 1;
  laps_.assign(table_.num_partitions(), 0);
  frozen_sizes_.assign(table_.num_partitions(), 0);
  FreezeSizes();
}

void ContinuousScan::FreezeSizes() {
  frozen_total_ = 0;
  for (uint32_t p = 0; p < table_.num_partitions(); ++p) {
    frozen_sizes_[p] = table_.PartitionRows(p);
    frozen_total_ += frozen_sizes_[p];
  }
}

bool ContinuousScan::SkipEmptyPartitions() {
  // At most one full sweep; if every partition is frozen-empty, re-freeze
  // (the table may have grown) and give up if still empty.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (uint32_t hops = 0; hops < table_.num_partitions(); ++hops) {
      if (frozen_sizes_[part_] > 0) return true;
      ++part_;
      if (part_ >= table_.num_partitions()) {
        part_ = 0;
        ++table_laps_;
        FreezeSizes();
      }
    }
    FreezeSizes();
  }
  return frozen_total_ > 0;
}

bool ContinuousScan::Next(ScanEvent* event) {
  if (index_ == 0 && need_pass_start_) {
    if (!SkipEmptyPartitions()) return false;
    need_pass_start_ = false;
    ++laps_[part_];
    event->kind = ScanEvent::Kind::kPassStart;
    event->partition = part_;
    event->lap = laps_[part_];
    event->count = 0;
    return true;
  }

  const uint64_t size = frozen_sizes_[part_];
  if (index_ >= size) {
    // Partition pass complete.
    event->kind = ScanEvent::Kind::kPassEnd;
    event->partition = part_;
    event->lap = laps_[part_];
    event->count = 0;
    index_ = 0;
    ++part_;
    if (part_ >= table_.num_partitions()) {
      part_ = 0;
      ++table_laps_;
      FreezeSizes();
    }
    need_pass_start_ = true;
    return true;
  }

  // Deliver the next run: stay within one page and one partition.
  const size_t rows_per_page = table_.rows_per_page();
  const size_t page = index_ / rows_per_page;
  const size_t in_page = index_ % rows_per_page;
  size_t run = std::min<uint64_t>(opts_.max_run_rows, size - index_);
  run = std::min(run, rows_per_page - in_page);

  const size_t stride = table_.row_stride();
  event->kind = ScanEvent::Kind::kRows;
  event->partition = part_;
  event->lap = laps_[part_];
  event->base = table_.PageData(part_, page) + in_page * stride;
  event->count = run;
  event->first_index = index_;
  event->partition_size = size;
  event->first_tick = tick_;

  if (opts_.disk != nullptr) {
    opts_.disk->Acquire(opts_.reader_id,
                        static_cast<uint64_t>(run) * stride);
  }

  index_ += run;
  tick_ += run;
  return true;
}

SinglePassScan::SinglePassScan(const Table& table,
                               ContinuousScan::Options options,
                               std::vector<uint32_t> partitions)
    : table_(table), opts_(options), parts_(std::move(partitions)) {
  if (opts_.max_run_rows == 0) opts_.max_run_rows = 1;
  if (parts_.empty()) {
    for (uint32_t p = 0; p < table_.num_partitions(); ++p) {
      parts_.push_back(p);
    }
  }
}

bool SinglePassScan::Next(ScanEvent* event) {
  while (part_cursor_ < parts_.size() &&
         index_ >= table_.PartitionRows(parts_[part_cursor_])) {
    ++part_cursor_;
    index_ = 0;
  }
  if (part_cursor_ >= parts_.size()) return false;

  const uint32_t part = parts_[part_cursor_];
  const uint64_t size = table_.PartitionRows(part);
  const size_t rows_per_page = table_.rows_per_page();
  const size_t page = index_ / rows_per_page;
  const size_t in_page = index_ % rows_per_page;
  size_t run = std::min<uint64_t>(opts_.max_run_rows, size - index_);
  run = std::min(run, rows_per_page - in_page);

  const size_t stride = table_.row_stride();
  event->kind = ScanEvent::Kind::kRows;
  event->partition = part;
  event->lap = 1;
  event->base = table_.PageData(part, page) + in_page * stride;
  event->count = run;
  event->first_index = index_;
  event->partition_size = size;
  event->first_tick = index_;

  if (opts_.disk != nullptr) {
    opts_.disk->Acquire(opts_.reader_id,
                        static_cast<uint64_t>(run) * stride);
  }
  index_ += run;
  return true;
}

}  // namespace cjoin
