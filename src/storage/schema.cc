#include "storage/schema.h"

namespace cjoin {

namespace {
size_t AlignUp(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

size_t TypeAlignment(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kChar:
      return 1;
  }
  return 1;
}
}  // namespace

void Schema::Append(Column col) {
  const size_t align = TypeAlignment(col.type);
  // row_size_ currently holds the rounded size; compute the raw end first.
  size_t cursor = columns_.empty()
                      ? 0
                      : columns_.back().offset + columns_.back().width();
  cursor = AlignUp(cursor, align);
  col.offset = static_cast<uint32_t>(cursor);
  cursor += col.width();
  columns_.push_back(std::move(col));
  row_size_ = AlignUp(cursor, 8);
}

Schema& Schema::AddInt32(std::string name) {
  Append(Column{std::move(name), DataType::kInt32, 0, 0});
  return *this;
}
Schema& Schema::AddInt64(std::string name) {
  Append(Column{std::move(name), DataType::kInt64, 0, 0});
  return *this;
}
Schema& Schema::AddDouble(std::string name) {
  Append(Column{std::move(name), DataType::kDouble, 0, 0});
  return *this;
}
Schema& Schema::AddChar(std::string name, uint32_t len) {
  Append(Column{std::move(name), DataType::kChar, len, 0});
  return *this;
}

int Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::FindColumn(std::string_view name) const {
  const int idx = ColumnIndex(name);
  if (idx < 0) {
    return Status::NotFound("no column named '" + std::string(name) + "'");
  }
  return static_cast<size_t>(idx);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += TypeName(columns_[i].type);
    if (columns_[i].type == DataType::kChar) {
      out += '(';
      out += std::to_string(columns_[i].char_len);
      out += ')';
    }
  }
  out += ')';
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& a = columns_[i];
    const Column& b = other.columns_[i];
    if (a.name != b.name || a.type != b.type || a.char_len != b.char_len) {
      return false;
    }
  }
  return true;
}

}  // namespace cjoin
