// Physical column types for the row store.

#ifndef CJOIN_STORAGE_TYPES_H_
#define CJOIN_STORAGE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace cjoin {

/// Fixed-width physical column types. CHAR(n) is a fixed-length,
/// NUL-padded byte field — the classic row-store layout the paper assumes
/// (§2.1 "conventional row-store").
enum class DataType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kChar = 3,
};

/// Size in bytes of a value of `type`; CHAR columns pass their declared
/// length.
inline size_t TypeSize(DataType type, size_t char_len = 0) {
  switch (type) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kChar:
      return char_len;
  }
  return 0;
}

inline const char* TypeName(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "INT32";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kChar:
      return "CHAR";
  }
  return "?";
}

}  // namespace cjoin

#endif  // CJOIN_STORAGE_TYPES_H_
